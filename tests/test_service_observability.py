"""Service observability plane: tracing, metrics, and the parity contract.

The load-bearing guarantees (see docs/observability.md §8):

* every response echoes the request's ``trace_id`` — including error
  responses — and the client verifies the echo;
* the ``metrics`` op exposes per-op latency histograms, admission-rejection
  counters, and per-session gauges that agree with what the server did;
* the plane is **observation only**: triangle counts, sampled-edge counts,
  and cumulative simulated seconds are bit-identical with
  ``observability=False``, and the NDJSON streams differ by extra keys only;
* a dropped connection surfaces as a typed ``connection_lost``
  :class:`ServiceError` carrying the in-flight op and trace id.
"""

from __future__ import annotations

import asyncio
import socket
import struct
import threading
from contextlib import contextmanager

import pytest

from repro.observability.logjson import load_ndjson
from repro.service import (
    CLIENT_ERROR_CODES,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    TriangleService,
    new_trace_id,
)
from repro.service.protocol import ERROR_CODES


# ----------------------------------------------------------------- harness
class _ServiceThread:
    """Run a TriangleService on its own event loop in a daemon thread."""

    def __init__(self, **config) -> None:
        self.service = TriangleService(ServiceConfig(port=0, **config))
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(10), "service failed to start"

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._ready.set()
        self.loop.run_forever()

    @property
    def url(self) -> str:
        return f"127.0.0.1:{self.service.port}"

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@contextmanager
def running_service(**config):
    server = _ServiceThread(**config)
    try:
        yield server
    finally:
        server.stop()


def _counter(doc: dict, name: str) -> float:
    entry = doc.get(name)
    return 0.0 if entry is None else float(entry.get("value", 0.0))


# ------------------------------------------------------------------ tracing
class TestTracing:
    def test_every_response_echoes_the_trace_id(self, triangle_graph):
        with running_service() as server, ServiceClient(server.url) as client:
            calls = (
                lambda: client.ping(),
                lambda: client.open_session(
                    "t", num_nodes=triangle_graph.num_nodes
                ),
                lambda: client.insert(
                    "t", triangle_graph.src.tolist(), triangle_graph.dst.tolist()
                ),
                lambda: client.count("t"),
                lambda: client.metrics(),
                lambda: client.close_session("t"),
            )
            for call in calls:
                response = call()
                assert response["trace_id"] == client.last_trace_id

    def test_caller_supplied_trace_id_wins(self):
        with running_service() as server, ServiceClient(server.url) as client:
            trace_id = new_trace_id()
            response = client.request("ping", trace_id=trace_id)
            assert response["trace_id"] == trace_id

    def test_error_responses_echo_the_trace_id_too(self):
        with running_service() as server, ServiceClient(server.url) as client:
            with pytest.raises(ServiceError) as exc_info:
                client.request("count", session="ghost", trace_id="deadbeef")
            assert exc_info.value.code == "unknown_session"
            assert exc_info.value.trace_id == "deadbeef"
            assert exc_info.value.op == "count"

    def test_trace_id_echoed_even_with_observability_off(self):
        # Trace echo is protocol-level plumbing, not part of the plane.
        with running_service(observability=False) as server:
            with ServiceClient(server.url) as client:
                response = client.ping()
                assert response["trace_id"] == client.last_trace_id

    def test_timing_block_present_only_when_observing(self, triangle_graph):
        edges = (triangle_graph.src.tolist(), triangle_graph.dst.tolist())
        with running_service() as server, ServiceClient(server.url) as client:
            client.open_session("on", num_nodes=triangle_graph.num_nodes)
            response = client.insert("on", *edges)
            timing = response["timing"]
            assert set(timing) == {
                "queue_wait_seconds",
                "execute_wall_seconds",
                "execute_sim_seconds",
            }
            assert timing["execute_sim_seconds"] > 0.0
        with running_service(observability=False) as server:
            with ServiceClient(server.url) as client:
                client.open_session("off", num_nodes=triangle_graph.num_nodes)
                response = client.insert("off", *edges)
                assert "timing" not in response


# ------------------------------------------------------------------ metrics
class TestMetricsOp:
    def test_snapshot_shape_and_latency_histograms(self, triangle_graph):
        with running_service() as server, ServiceClient(server.url) as client:
            client.open_session("m", num_nodes=triangle_graph.num_nodes)
            client.insert(
                "m", triangle_graph.src.tolist(), triangle_graph.dst.tolist()
            )
            client.count("m")
            doc = client.metrics()
        assert doc["schema"] == "repro-service-metrics/1"
        assert doc["observability"] is True
        assert doc["sessions_open"] == 1
        assert _counter(doc["service"], "service.requests.open") == 1
        assert _counter(doc["service"], "service.requests.insert") == 1
        assert _counter(doc["service"], "service.requests.count") == 1
        # The server-side latency summary uses "n" (not "count") so the
        # flattened trend sample never collides with the exact-match
        # triangle-count rule.
        assert doc["latency"]["insert"]["n"] == 1
        assert doc["latency"]["insert"]["p99"] >= doc["latency"]["insert"]["p50"] >= 0
        block = doc["sessions"]["m"]
        ops = block["metrics"]
        assert _counter(ops, "session.ops.insert") == 1
        assert _counter(ops, "session.ops.count") == 1
        hist = ops["session.op_sim_seconds.insert"]
        assert hist["kind"] == "histogram" and hist["count"] == 1
        assert hist["sum"] > 0.0  # simulated seconds actually charged
        assert block["latency"]["insert"]["n"] == 1
        assert block["resident_bytes"] >= 0

    def test_rejection_counters_match_provoked_failures(self, triangle_graph):
        with running_service(max_sessions=1) as server:
            with ServiceClient(server.url) as client:
                client.open_session("only", num_nodes=triangle_graph.num_nodes)
                with pytest.raises(ServiceError, match="already open"):
                    client.open_session("only", num_nodes=4)
                with pytest.raises(ServiceError):
                    client.open_session("overflow", num_nodes=4)
                with pytest.raises(ServiceError):
                    client.count("ghost")
                doc = client.metrics()
        service = doc["service"]
        assert _counter(service, "service.rejections.duplicate_session") == 1
        assert _counter(service, "service.rejections.admission_rejected") == 1
        assert _counter(service, "service.rejections.unknown_session") == 1
        total = sum(
            _counter(service, f"service.rejections.{code}")
            for code in ERROR_CODES
            if code not in CLIENT_ERROR_CODES
        )
        assert total == 3

    def test_invalid_ops_are_counted_without_polluting_op_families(self):
        with running_service() as server, ServiceClient(server.url) as client:
            with pytest.raises(ServiceError, match="unknown op"):
                client.request("frobnicate")
            doc = client.metrics()
        assert _counter(doc["service"], "service.requests.invalid") == 1
        assert "service.requests.frobnicate" not in doc["service"]

    def test_session_gauges_track_open_and_close(self):
        with running_service() as server, ServiceClient(server.url) as client:
            client.open_session("a", num_nodes=8)
            client.open_session("b", num_nodes=8)
            assert client.metrics()["sessions_open"] == 2
            client.close_session("a")
            doc = client.metrics()
            assert doc["sessions_open"] == 1
            assert _counter(doc["service"], "service.sessions_opened") == 2
            assert list(doc["sessions"]) == ["b"]

    def test_metrics_op_with_observability_off_reports_disabled(self):
        with running_service(observability=False) as server:
            with ServiceClient(server.url) as client:
                client.open_session("dark", num_nodes=8)
                doc = client.metrics()
        assert doc["observability"] is False
        assert doc["sessions_open"] == 1
        # No per-session instruments were registered.
        assert doc["sessions"]["dark"]["metrics"] == {}

    def test_metrics_out_file_written_on_shutdown(self, tmp_path, triangle_graph):
        out = tmp_path / "snapshot.json"
        server = _ServiceThread(metrics_out=str(out))
        try:
            with ServiceClient(server.url) as client:
                client.open_session("s", num_nodes=triangle_graph.num_nodes)
                client.insert(
                    "s", triangle_graph.src.tolist(), triangle_graph.dst.tolist()
                )
        finally:
            server.stop()
        import json

        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro-service-metrics/1"
        # Written before sessions close: the per-session block survives.
        assert "s" in doc["sessions"]


# ------------------------------------------------------- observation parity
class TestObservationOnlyParity:
    """observability=True must not change a single simulated number."""

    EXTRA_EVENT_KEYS = {"trace_id", "queue_wait_seconds", "execute_wall_seconds"}
    NONDETERMINISTIC = {"ts", "run_id"}

    def _drive(self, tmp_path, label, observability, graph):
        event_dir = tmp_path / label
        event_dir.mkdir()
        views = {}
        with running_service(
            event_dir=str(event_dir), observability=observability
        ) as server:
            with ServiceClient(server.url) as client:
                client.open_session(
                    "p", num_nodes=graph.num_nodes, num_colors=3, seed=42
                )
                client.insert_graph("p", graph, batch_edges=40)
                views["count"] = client.count("p")
                views["stats"] = client.stats("p")
                client.close_session("p")
        views["events"] = load_ndjson(event_dir / "p.ndjson")
        return views

    def test_counts_sim_clock_and_events_bit_identical(self, tmp_path, rngs):
        from repro.graph.generators import erdos_renyi

        graph = erdos_renyi(60, 300, rngs.stream("parity"), name="parity")
        graph = graph.canonicalize()
        on = self._drive(tmp_path, "on", True, graph)
        off = self._drive(tmp_path, "off", False, graph)

        # Simulated results: bit-identical, including the simulated clock.
        # Only the plane's own additions and honest wall clocks may differ.
        wall_keys = ("timing", "trace_id", "created_at", "idle_seconds")
        for view in ("count", "stats"):
            a = {k: v for k, v in on[view].items() if k not in wall_keys}
            b = {k: v for k, v in off[view].items() if k not in wall_keys}
            assert a == b

        # NDJSON: same events in the same order; the plane adds keys only.
        assert len(on["events"]) == len(off["events"])
        for ev_on, ev_off in zip(on["events"], off["events"]):
            assert ev_on["event"] == ev_off["event"]
            drop = self.EXTRA_EVENT_KEYS | self.NONDETERMINISTIC
            core_on = {k: v for k, v in ev_on.items() if k not in drop}
            core_off = {k: v for k, v in ev_off.items() if k not in drop}
            assert core_on == core_off
            # And the extra keys appear only on the observed side.
            assert not (self.EXTRA_EVENT_KEYS & set(ev_off))


# ---------------------------------------------------------- connection loss
class _FlakyServer:
    """Accepts one connection, then reads/behaves per the chosen failure."""

    def __init__(self, mode: str) -> None:
        self.mode = mode
        self._sock = socket.socket()
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(1)
        self.port = self._sock.getsockname()[1]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self) -> None:
        conn, _ = self._sock.accept()
        try:
            if self.mode == "close_before_reply":
                conn.recv(65536)
            elif self.mode == "truncated_frame":
                conn.recv(65536)
                # Header promises 100 bytes, then the connection dies.
                conn.sendall(struct.pack(">I", 100) + b'{"ok"')
            elif self.mode == "hang":
                conn.recv(65536)
                self._sock.accept()  # blocks forever (no second connection)
        except OSError:
            pass
        finally:
            conn.close()
            self._sock.close()


class TestConnectionLost:
    @pytest.mark.parametrize("mode", ["close_before_reply", "truncated_frame"])
    def test_dropped_connection_raises_typed_error(self, mode):
        flaky = _FlakyServer(mode)
        client = ServiceClient(f"127.0.0.1:{flaky.port}", timeout=5.0)
        with pytest.raises(ServiceError) as exc_info:
            client.request("count", session="s")
        err = exc_info.value
        assert err.code == "connection_lost"
        assert err.code in CLIENT_ERROR_CODES
        assert err.op == "count"
        assert err.trace_id  # the in-flight id survives into the error
        assert "count" in str(err)

    def test_socket_is_poisoned_after_loss(self):
        flaky = _FlakyServer("close_before_reply")
        client = ServiceClient(f"127.0.0.1:{flaky.port}", timeout=5.0)
        with pytest.raises(ServiceError, match="connection_lost|lost"):
            client.request("ping")
        # The second request must fail fast on the closed socket, not hang.
        with pytest.raises(ServiceError) as exc_info:
            client.request("ping")
        assert exc_info.value.code == "connection_lost"

    def test_per_request_timeout_override(self):
        flaky = _FlakyServer("hang")
        client = ServiceClient(f"127.0.0.1:{flaky.port}", timeout=60.0)
        import time

        start = time.monotonic()
        with pytest.raises(ServiceError) as exc_info:
            client.request("ping", timeout=0.3)
        elapsed = time.monotonic() - start
        assert exc_info.value.code == "connection_lost"
        assert elapsed < 5.0  # the 0.3s override applied, not the 60s default

    def test_connection_lost_never_reported_by_server(self):
        # connection_lost is client-side only: the server never pre-registers
        # or increments a rejection counter for it.
        with running_service() as server, ServiceClient(server.url) as client:
            doc = client.metrics()
        assert "service.rejections.connection_lost" not in doc["service"]
