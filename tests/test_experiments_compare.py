"""Result-diff tool (repro.experiments.compare)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.compare import compare_tables, main


def payload(rows, headers=("Graph", "value")):
    return {"title": "t", "headers": list(headers), "rows": [list(r) for r in rows]}


class TestCompareTables:
    def test_identical(self):
        p = payload([["a", 1.0], ["b", 2.0]])
        assert compare_tables(p, p) == []

    def test_numeric_drift_detected(self):
        a = payload([["a", 1.0]])
        b = payload([["a", 1.2]])
        drifts = compare_tables(a, b)
        assert len(drifts) == 1
        assert "value" in drifts[0].location

    def test_tolerance_absorbs_small_drift(self):
        a = payload([["a", 100.0]])
        b = payload([["a", 104.0]])
        assert compare_tables(a, b, tolerance=0.05) == []
        assert len(compare_tables(a, b, tolerance=0.01)) == 1

    def test_string_cells_compared_exactly(self):
        a = payload([["a", 1.0]])
        b = payload([["z", 1.0]])
        assert len(compare_tables(a, b, tolerance=1.0)) == 1

    def test_bool_cells_not_treated_as_numbers(self):
        a = payload([[True, 1.0]])
        b = payload([[False, 1.0]])
        assert len(compare_tables(a, b, tolerance=1.0)) == 1

    def test_row_count_mismatch(self):
        a = payload([["a", 1.0]])
        b = payload([["a", 1.0], ["b", 2.0]])
        drifts = compare_tables(a, b)
        assert drifts[0].location == "row count"

    def test_header_mismatch_short_circuits(self):
        a = payload([["a", 1.0]])
        b = payload([["a", 1.0]], headers=("Graph", "other"))
        assert compare_tables(a, b)[0].location == "headers"


class TestCli:
    def test_identical_files(self, tmp_path, capsys):
        p = payload([["a", 1.0]])
        f1 = tmp_path / "a.json"
        f2 = tmp_path / "b.json"
        f1.write_text(json.dumps(p))
        f2.write_text(json.dumps(p))
        assert main([str(f1), str(f2)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_drift_exits_nonzero(self, tmp_path, capsys):
        f1 = tmp_path / "a.json"
        f2 = tmp_path / "b.json"
        f1.write_text(json.dumps(payload([["a", 1.0]])))
        f2.write_text(json.dumps(payload([["a", 9.0]])))
        assert main([str(f1), str(f2)]) == 1
        assert "drift" in capsys.readouterr().out

    def test_round_trip_with_runner(self, tmp_path):
        """The runner's --json output feeds compare directly."""
        from repro.experiments.runner import main as runner_main

        out = tmp_path / "tab2.json"
        assert runner_main(["tab2", "--tier", "tiny", "--json", "--out", str(out)]) == 0
        payload_dict = json.loads(out.read_text())
        assert compare_tables(payload_dict, payload_dict) == []
