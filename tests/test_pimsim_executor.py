"""Executor engines: parity contract, chunking, and graceful degradation.

The determinism contract (see ``repro.pimsim.executor``): the execution
engine changes host wall-clock only.  Triangle counts, per-phase simulated
seconds, per-DPU charge vectors, and trace event totals must be bit-identical
across serial / thread / process engines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import RngFactory
from repro.core.api import PimTriangleCounter
from repro.graph.generators import erdos_renyi
from repro.pimsim.config import EXECUTOR_NAMES, PimSystemConfig
from repro.pimsim.executor import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    _chunk_slices,
    make_executor,
)

ENGINES = list(EXECUTOR_NAMES)


@pytest.fixture(scope="module")
def seeded_graph():
    rng = RngFactory(99).stream("executor-graph")
    return erdos_renyi(150, 1500, rng, name="er-exec").canonicalize()


def _run(graph, engine: str, jobs: int | None = 2, **opts):
    counter = PimTriangleCounter(seed=5, executor=engine, jobs=jobs, **opts)
    return counter.count(graph)


# ------------------------------------------------------------------- parity
@pytest.mark.parametrize("engine", ENGINES)
def test_engine_parity_exact_path(seeded_graph, engine):
    """Counts, per-phase simulated seconds and trace totals match serial."""
    base = _run(seeded_graph, "serial", num_colors=5)
    result = _run(seeded_graph, engine, num_colors=5)
    assert result.count == base.count
    assert result.clock.phases == base.clock.phases  # bit-identical, not approx
    assert np.array_equal(result.per_dpu_counts, base.per_dpu_counts)
    assert result.trace.counts_by_kind() == base.trace.counts_by_kind()
    assert result.trace.total_seconds() == base.trace.total_seconds()
    assert result.kernel == base.kernel


@pytest.mark.parametrize("engine", ENGINES)
def test_engine_parity_sampling_paths(seeded_graph, engine):
    """Reservoir + Misra-Gries paths stay bit-identical too (per-DPU RNG)."""
    kw = dict(
        num_colors=4,
        reservoir_capacity=64,
        misra_gries_k=32,
        misra_gries_t=4,
    )
    base = _run(seeded_graph, "serial", **kw)
    result = _run(seeded_graph, engine, **kw)
    assert result.estimate == base.estimate
    assert result.clock.phases == base.clock.phases
    assert np.array_equal(result.per_dpu_counts, base.per_dpu_counts)
    assert np.array_equal(result.reservoir_scales, base.reservoir_scales)


def test_engine_parity_charge_vectors(seeded_graph):
    """Worker processes hand back the exact charge ledgers serial would build."""
    from repro.core.kernel_tc_fast import TriangleCountKernel
    from repro.pimsim.system import PimSystem

    ledgers = {}
    for engine in ("serial", "process"):
        system = PimSystem(PimSystemConfig(executor=engine, jobs=2))
        dpus = system.allocate(6)
        dpus.load_kernel(TriangleCountKernel(num_nodes=seeded_graph.num_nodes))
        m = seeded_graph.num_edges
        chunks = np.array_split(np.arange(m), 6)
        dpus.scatter("sample_src", [seeded_graph.src[c].astype(np.int32) for c in chunks])
        dpus.scatter("sample_dst", [seeded_graph.dst[c].astype(np.int32) for c in chunks])
        dpus.launch()
        ledgers[engine] = [dpu.charge_vectors() for dpu in dpus.dpus]
        dpus.free()
    for (si, sd), (pi, pd) in zip(ledgers["serial"], ledgers["process"]):
        assert np.array_equal(si, pi)
        assert np.array_equal(sd, pd)


# ------------------------------------------------------------------ engines
def test_make_executor_names_and_validation():
    assert isinstance(make_executor("serial"), SerialExecutor)
    assert isinstance(make_executor("thread", 3), ThreadExecutor)
    assert isinstance(make_executor("process", 2), ProcessExecutor)
    with pytest.raises(ConfigurationError):
        make_executor("gpu")
    with pytest.raises(ConfigurationError):
        make_executor("thread", 0)


def test_config_validates_executor_fields():
    with pytest.raises(ConfigurationError):
        PimSystemConfig(executor="warp")
    with pytest.raises(ConfigurationError):
        PimSystemConfig(jobs=0)
    cfg = PimSystemConfig().with_executor("process", 4)
    assert (cfg.executor, cfg.jobs) == ("process", 4)


def test_chunk_slices_cover_exactly_once():
    for n, parts in [(1, 4), (7, 3), (10, 10), (120, 7), (5, 1)]:
        slices = _chunk_slices(n, parts)
        seen = []
        for sl in slices:
            seen.extend(range(n)[sl])
        assert seen == list(range(n))
        assert len(slices) == min(parts, n)


def test_process_executor_jobs1_degrades_gracefully(seeded_graph):
    """jobs=1 must run in-process (no pool) and still be bit-identical."""
    executor = ProcessExecutor(jobs=1)
    try:
        base = _run(seeded_graph, "serial", num_colors=4)
        result = _run(seeded_graph, "process", jobs=1, num_colors=4)
        assert result.count == base.count
        assert result.clock.phases == base.clock.phases
        # and the engine never opened a pool
        assert executor._pool is None
        executor.map_dpus(lambda dpu, p: p, [], [])
        assert executor._pool is None
    finally:
        executor.close()


def test_env_var_selects_executor(monkeypatch):
    """REPRO_EXECUTOR / REPRO_JOBS flip every counter the harness builds."""
    monkeypatch.setenv("REPRO_EXECUTOR", "thread")
    monkeypatch.setenv("REPRO_JOBS", "3")
    counter = PimTriangleCounter(num_colors=3)
    assert counter.system.config.executor == "thread"
    assert counter.system.config.jobs == 3
    # explicit arguments still win over the environment
    counter = PimTriangleCounter(num_colors=3, executor="serial", jobs=1)
    assert counter.system.config.executor == "serial"
    assert counter.system.config.jobs == 1


def test_executor_map_results_in_dpu_order():
    """Results are merged by DPU index whatever the scheduling order."""
    from repro.pimsim.config import CostModel, DpuConfig
    from repro.pimsim.dpu import Dpu

    dpus = [Dpu(dpu_id=i, config=DpuConfig(), cost=CostModel()) for i in range(9)]
    payloads = list(range(9))
    for engine in (SerialExecutor(), ThreadExecutor(jobs=4), ProcessExecutor(jobs=3)):
        try:
            out = engine.map_dpus(_echo_payload, dpus, payloads)
            assert out == payloads
        finally:
            engine.close()


def _echo_payload(dpu, payload):
    return payload


def test_process_executor_merges_mutations_back():
    """MRAM writes made inside workers must be visible to the parent."""
    from repro.pimsim.config import CostModel, DpuConfig
    from repro.pimsim.dpu import Dpu

    dpus = [Dpu(dpu_id=i, config=DpuConfig(), cost=CostModel()) for i in range(4)]
    engine = ProcessExecutor(jobs=2)
    try:
        engine.map_dpus(_store_id, dpus, [None] * 4)
    finally:
        engine.close()
    for i, dpu in enumerate(dpus):
        assert int(dpu.mram.load("marker", count_read=False)[0]) == i


def _store_id(dpu, _payload):
    dpu.mram.store("marker", np.array([dpu.dpu_id], dtype=np.int64), count_write=False)
    return None


def test_map_dpus_async_matches_sync_results():
    """join() returns exactly what map_dpus would, on every engine."""
    from repro.pimsim.config import CostModel, DpuConfig
    from repro.pimsim.dpu import Dpu

    payloads = list(range(9))
    for engine in (SerialExecutor(), ThreadExecutor(jobs=4), ProcessExecutor(jobs=3)):
        dpus = [Dpu(dpu_id=i, config=DpuConfig(), cost=CostModel()) for i in range(9)]
        try:
            join = engine.map_dpus_async(_echo_payload, dpus, payloads)
            assert join() == payloads
        finally:
            engine.close()


def test_map_dpus_async_process_splices_mutations_at_join():
    """Worker-side MRAM writes appear in the parent's DPU list after join()."""
    from repro.pimsim.config import CostModel, DpuConfig
    from repro.pimsim.dpu import Dpu

    dpus = [Dpu(dpu_id=i, config=DpuConfig(), cost=CostModel()) for i in range(6)]
    engine = ProcessExecutor(jobs=2)
    try:
        join = engine.map_dpus_async(_store_id, dpus, [None] * 6)
        join()
    finally:
        engine.close()
    for i, dpu in enumerate(dpus):
        assert int(dpu.mram.load("marker", count_read=False)[0]) == i


def test_map_dpus_async_single_dpu_is_eager():
    """Degenerate shapes skip the pool: the base (eager) path runs inline."""
    from repro.pimsim.config import CostModel, DpuConfig
    from repro.pimsim.dpu import Dpu

    for engine in (ThreadExecutor(jobs=4), ProcessExecutor(jobs=4)):
        dpus = [Dpu(dpu_id=0, config=DpuConfig(), cost=CostModel())]
        try:
            join = engine.map_dpus_async(_echo_payload, dpus, [41])
            assert join() == [41]
        finally:
            engine.close()
