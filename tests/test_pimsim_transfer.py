"""CPU<->PIM transfer model: rank padding, monotonicity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import TransferError
from repro.pimsim.config import PimSystemConfig
from repro.pimsim.transfer import TransferModel


@pytest.fixture
def model() -> TransferModel:
    return TransferModel(PimSystemConfig(num_ranks=4, dpus_per_rank=8))


class TestBroadcast:
    def test_latency_floor(self, model):
        stats = model.broadcast(0, 32)
        assert stats.seconds == pytest.approx(model.cost.transfer_latency)

    def test_linear_in_bytes(self, model):
        a = model.broadcast(1 << 20, 32).seconds
        b = model.broadcast(2 << 20, 32).seconds
        lat = model.cost.transfer_latency
        assert (b - lat) == pytest.approx(2 * (a - lat))

    def test_rejects_zero_dpus(self, model):
        with pytest.raises(TransferError):
            model.broadcast(10, 0)


class TestScatter:
    def test_uniform_sizes_no_padding(self, model):
        sizes = np.full(32, 1000, dtype=np.int64)
        stats = model.scatter(sizes)
        assert stats.effective_bytes == stats.payload_bytes == 32_000

    def test_skew_pads_to_rank_max(self, model):
        sizes = np.zeros(8, dtype=np.int64)  # one full rank
        sizes[0] = 8000
        stats = model.scatter(sizes)
        assert stats.payload_bytes == 8000
        assert stats.effective_bytes == 8 * 8000  # padded to the max buffer

    def test_multi_rank_padding_is_per_rank(self, model):
        sizes = np.concatenate([np.full(8, 100), np.full(8, 10_000)]).astype(np.int64)
        stats = model.scatter(sizes)
        assert stats.effective_bytes == 8 * 100 + 8 * 10_000

    def test_monotone_in_bytes(self, model):
        small = model.scatter(np.full(16, 100, dtype=np.int64)).seconds
        big = model.scatter(np.full(16, 10_000, dtype=np.int64)).seconds
        assert big > small

    def test_rejects_negative(self, model):
        with pytest.raises(TransferError):
            model.scatter(np.array([-1]))

    def test_rejects_empty(self, model):
        with pytest.raises(TransferError):
            model.scatter(np.array([], dtype=np.int64))


class TestGather:
    def test_same_padding_semantics_as_scatter(self, model):
        sizes = np.arange(1, 9, dtype=np.int64) * 100
        assert (
            model.gather(sizes).effective_bytes == model.scatter(sizes).effective_bytes
        )


class TestRanksUsed:
    @pytest.mark.parametrize("dpus,expected", [(1, 1), (8, 1), (9, 2), (32, 4)])
    def test_ceiling(self, model, dpus, expected):
        assert model.ranks_used(dpus) == expected
