"""Live run monitor: heartbeat events, join-complete streams, repro-watch.

Heartbeats are emitted parent-side from the batched ingest drain, so their
fields (chunk index, edges streamed/kept, routed bytes, simulated-clock ETA)
must be bit-identical across the serial/thread/process execution engines —
and enabling them must change no simulated number (the observation-only
contract, mirroring ``TestObservationOnly`` for the imbalance ledger).
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.api import PimTriangleCounter
from repro.core.ingest import num_batches
from repro.graph.generators import erdos_renyi
from repro.observability import (
    load_ndjson,
    stream_status,
    validate_ndjson_events,
)
from repro.observability.watch import main as watch_main, render_stream, summarize_stream
from repro.telemetry import Telemetry


def make_graph(seed: int = 7):
    rng = np.random.default_rng(seed)
    return erdos_renyi(120, 700, rng).canonicalize()


def run_with_sink(graph, executor: str = "serial", batch_edges: int = 100):
    telemetry = Telemetry(detail=True)
    events: list[tuple[str, dict]] = []
    telemetry.event_sink = lambda event, **fields: events.append((event, fields))
    counter = PimTriangleCounter(
        num_colors=4,
        seed=3,
        batch_edges=batch_edges,
        executor=executor,
        jobs=2 if executor != "serial" else None,
        telemetry=telemetry,
    )
    result = counter.count(graph)
    return result, events


class TestHeartbeat:
    def test_one_heartbeat_per_chunk_with_progress(self):
        graph = make_graph()
        batch_edges = 100
        result, events = run_with_sink(graph, batch_edges=batch_edges)
        beats = [fields for event, fields in events if event == "heartbeat"]
        expected = num_batches(graph.num_edges, batch_edges)
        assert len(beats) == expected
        assert [b["batch"] for b in beats] == list(range(expected))
        assert all(b["batches_total"] == expected for b in beats)
        # Monotone progress, finishing at the full edge stream.
        streamed = [b["edges_streamed"] for b in beats]
        assert streamed == sorted(streamed)
        assert streamed[-1] == graph.num_edges
        assert all(b["edges_total"] == graph.num_edges for b in beats)
        # The last chunk has nothing left, so its ETA is zero; earlier ones
        # extrapolate the double-buffer recurrence forward.
        assert beats[-1]["eta_sim_seconds"] == pytest.approx(0.0)
        assert all(b["eta_sim_seconds"] >= 0.0 for b in beats)
        assert beats[0]["eta_sim_seconds"] > 0.0
        # Simulated elapsed grows with the schedule.
        elapsed = [b["sim_elapsed_seconds"] for b in beats]
        assert elapsed == sorted(elapsed)

    def test_monolithic_ingest_emits_no_heartbeats(self):
        graph = make_graph()
        result, events = run_with_sink(graph, batch_edges=None)
        assert not [e for e, _ in events if e == "heartbeat"]

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_heartbeats_engine_invariant(self, executor):
        graph = make_graph()
        _, serial_events = run_with_sink(graph, executor="serial")
        _, other_events = run_with_sink(graph, executor=executor)
        assert serial_events == other_events

    def test_sink_is_observation_only(self):
        """Counts, clocks, and metrics identical with and without the sink."""
        graph = make_graph()

        def run(with_sink: bool):
            telemetry = Telemetry(detail=True)
            if with_sink:
                telemetry.event_sink = lambda event, **fields: None
            result = PimTriangleCounter(
                num_colors=4, seed=3, batch_edges=100, telemetry=telemetry
            ).count(graph)
            return result, telemetry

        on, tel_on = run(True)
        off, tel_off = run(False)
        assert on.count == off.count
        assert on.clock.phases == off.clock.phases
        assert np.array_equal(on.per_dpu_counts, off.per_dpu_counts)
        assert tel_on.metrics.snapshot() == tel_off.metrics.snapshot()
        assert tel_on.span_signature() == tel_off.span_signature()

    def test_disabled_telemetry_suppresses_events(self):
        telemetry = Telemetry(enabled=False)
        seen = []
        telemetry.event_sink = lambda event, **fields: seen.append(event)
        telemetry.emit_event("heartbeat", batch=0)
        assert seen == []


class TestJoinCompleteStreams:
    def test_successful_cli_run_ends_with_ok(self, tmp_path):
        log = tmp_path / "run.ndjson"
        assert cli_main(
            [
                "dataset:wikipedia", "--tier", "tiny", "--colors", "4",
                "--batch-edges", "500", "--log-json", str(log),
            ]
        ) == 0
        records = load_ndjson(log)
        assert validate_ndjson_events(records) == []
        assert stream_status(records) == "ok"
        assert records[-1]["event"] == "run_end"
        assert any(r["event"] == "heartbeat" for r in records)

    def test_pipeline_exception_still_emits_run_end(self, tmp_path, monkeypatch):
        class Boom:
            def __init__(self, **kwargs):
                pass

            def count(self, graph):
                raise RuntimeError("synthetic pipeline failure")

        monkeypatch.setattr("repro.cli.PimTriangleCounter", Boom)
        log = tmp_path / "crash.ndjson"
        with pytest.raises(RuntimeError, match="synthetic"):
            cli_main(
                ["dataset:wikipedia", "--tier", "tiny", "--log-json", str(log)]
            )
        records = load_ndjson(log)
        assert stream_status(records) == "error"
        last = records[-1]
        assert last["event"] == "run_end"
        assert last["status"] == "error"
        assert "RuntimeError" in last["error"]

    def test_stream_without_run_end_is_in_flight(self):
        records = [
            {"ts": 1.0, "run_id": "r", "event": "run_start", "graph": "g"},
            {"ts": 2.0, "run_id": "r", "event": "span_start", "path": "setup"},
        ]
        assert stream_status(records) == "in-flight"
        assert stream_status([]) == "empty"

    def test_validator_rejects_events_after_run_end(self):
        records = [
            {"ts": 1.0, "run_id": "r", "event": "run_start", "graph": "g"},
            {"ts": 2.0, "run_id": "r", "event": "run_end", "status": "ok"},
            {"ts": 3.0, "run_id": "r", "event": "estimate", "estimate": 1.0},
        ]
        errors = validate_ndjson_events(records)
        assert any("after terminal run_end" in e for e in errors)

    def test_validator_rejects_unknown_events_and_mixed_ids(self):
        records = [
            {"ts": 1.0, "run_id": "a", "event": "telepathy"},
            {"ts": 2.0, "run_id": "b", "event": "run_end", "status": "ok"},
        ]
        errors = validate_ndjson_events(records)
        assert any("unknown event" in e for e in errors)
        assert any("mixes 2 run_ids" in e for e in errors)

    def test_load_ndjson_tolerates_partial_tail_only(self, tmp_path):
        path = tmp_path / "t.ndjson"
        good = json.dumps({"ts": 1.0, "run_id": "r", "event": "run_start"})
        path.write_text(good + "\n" + '{"ts": 2.0, "trunc')
        assert len(load_ndjson(path)) == 1
        path.write_text('{"broken\n' + good + "\n")
        with pytest.raises(json.JSONDecodeError):
            load_ndjson(path)


class TestWatch:
    @pytest.fixture()
    def finished_stream(self, tmp_path):
        log = tmp_path / "run.ndjson"
        cli_main(
            [
                "dataset:wikipedia", "--tier", "tiny", "--colors", "4",
                "--batch-edges", "500", "--log-json", str(log),
            ]
        )
        return log

    def test_summarize_folds_latest_state(self, finished_stream):
        records = load_ndjson(finished_stream)
        view = summarize_stream(records)
        assert view["status"] == "ok"
        assert view["graph"] == "wikipedia"
        assert view["heartbeat"]["batch"] == view["heartbeat"]["batches_total"] - 1
        assert view["estimates"]

    def test_render_finished_run(self, finished_stream):
        text = render_stream(load_ndjson(finished_stream))
        assert "wikipedia" in text
        assert "completed ok" in text
        assert "batch" in text

    def test_render_in_flight_and_crashed(self):
        in_flight = [
            {"ts": 1.0, "run_id": "r", "event": "run_start", "graph": "g",
             "num_edges": 10},
            {"ts": 2.0, "run_id": "r", "event": "span_start", "path": "setup"},
        ]
        text = render_stream(in_flight, now=5.0)
        assert "in flight" in text and "setup" in text
        crashed = in_flight[:1] + [
            {"ts": 2.0, "run_id": "r", "event": "run_end", "status": "error",
             "error": "ValueError: bad"},
        ]
        assert "CRASHED" in render_stream(crashed)
        assert render_stream([]) == "(no events yet)"

    def test_cli_exit_codes(self, finished_stream, tmp_path, capsys):
        assert watch_main([str(finished_stream), "--validate"]) == 0
        assert "completed ok" in capsys.readouterr().out
        crash = tmp_path / "crash.ndjson"
        crash.write_text(
            json.dumps({"ts": 1.0, "run_id": "r", "event": "run_end",
                        "status": "error", "error": "boom"}) + "\n"
        )
        assert watch_main([str(crash)]) == 1
        capsys.readouterr()

    def test_follow_times_out_on_in_flight_stream(self, tmp_path, capsys):
        log = tmp_path / "stuck.ndjson"
        log.write_text(
            json.dumps({"ts": 1.0, "run_id": "r", "event": "run_start",
                        "graph": "g"}) + "\n"
        )
        rc = watch_main(
            [str(log), "--follow", "--interval", "0.01", "--timeout", "0.05"]
        )
        assert rc == 2
        capsys.readouterr()


class TestTailer:
    """Incremental NDJSON tailing under writer races, truncation, rotation."""

    @staticmethod
    def _line(i: int) -> str:
        return json.dumps({"ts": float(i), "run_id": "r", "event": "span_start",
                           "path": f"batch[{i}]"})

    def test_partial_tail_buffers_until_complete(self, tmp_path):
        from repro.observability import NdjsonTailer

        path = tmp_path / "t.ndjson"
        tailer = NdjsonTailer(path)
        whole, partial = self._line(0), self._line(1)
        with open(path, "w") as fh:
            fh.write(whole + "\n" + partial[:9])
            fh.flush()
            # The half-written line must not be parsed — or discarded.
            assert [r["path"] for r in tailer.poll()] == ["batch[0]"]
            assert tailer.poll() == []
            fh.write(partial[9:] + "\n")
            fh.flush()
            assert [r["path"] for r in tailer.poll()] == ["batch[1]"]
        assert len(tailer.records) == 2
        assert tailer.restarts == 0

    def test_truncation_restarts_the_stream(self, tmp_path):
        from repro.observability import NdjsonTailer

        path = tmp_path / "t.ndjson"
        path.write_text(self._line(0) + "\n" + self._line(1) + "\n")
        tailer = NdjsonTailer(path)
        assert len(tailer.poll()) == 2
        path.write_text(self._line(9) + "\n")  # writer reopened with "w"
        new = tailer.poll()
        assert tailer.restarts == 1
        assert [r["path"] for r in new] == ["batch[9]"]
        assert tailer.records == new  # the old incarnation's records are gone

    def test_rotation_restarts_the_stream(self, tmp_path):
        from repro.observability import NdjsonTailer

        path = tmp_path / "t.ndjson"
        path.write_text(self._line(0) + "\n")
        tailer = NdjsonTailer(path)
        assert len(tailer.poll()) == 1
        rotated = tmp_path / "t.ndjson.new"
        # Same byte length as the original, so only the inode gives it away.
        rotated.write_text(self._line(5) + "\n")
        rotated.replace(path)
        new = tailer.poll()
        assert tailer.restarts == 1
        assert [r["path"] for r in new] == ["batch[5]"]

    def test_missing_file_then_created(self, tmp_path):
        from repro.observability import NdjsonTailer

        path = tmp_path / "late.ndjson"
        tailer = NdjsonTailer(path)
        assert tailer.poll() == []  # not an error before the writer starts
        path.write_text(self._line(0) + "\n")
        assert len(tailer.poll()) == 1
        path.unlink()  # writer went away: restart, don't crash
        assert tailer.poll() == []
        assert tailer.restarts == 1

    def test_live_writer_race(self, tmp_path):
        """A writer flushing mid-line never produces a misparsed record."""
        import threading
        import time as _time

        from repro.observability import NdjsonTailer

        path = tmp_path / "race.ndjson"
        total = 200

        def writer():
            with open(path, "w") as fh:
                for i in range(total):
                    line = self._line(i) + "\n"
                    cut = (i * 7) % (len(line) - 1) + 1
                    fh.write(line[:cut])
                    fh.flush()  # expose a torn line to the tailer
                    fh.write(line[cut:])
                    fh.flush()

        thread = threading.Thread(target=writer)
        tailer = NdjsonTailer(path)
        thread.start()
        deadline = _time.monotonic() + 30
        while len(tailer.records) < total and _time.monotonic() < deadline:
            tailer.poll()
        thread.join(10)
        tailer.poll()
        assert [r["path"] for r in tailer.records] == [
            f"batch[{i}]" for i in range(total)
        ]
        assert tailer.restarts == 0

    def test_follow_survives_truncation_and_finishes(self, tmp_path, capsys):
        """`repro-watch --follow` rides out a writer restart: it reports the
        restart and renders only the new incarnation through run_end."""
        import threading
        import time as _time

        path = tmp_path / "f.ndjson"
        # The stale incarnation is longer than the fresh one's first line, so
        # the truncating reopen is visible as a size drop (a same-size
        # rewrite on the same inode is undetectable — same as `tail -F`).
        path.write_text(
            json.dumps({"ts": 1.0, "run_id": "old", "event": "run_start",
                        "graph": "stale-" + "x" * 120}) + "\n"
        )

        def restart_writer():
            _time.sleep(0.15)
            with open(path, "w") as fh:  # truncating reopen — a fresh run
                fh.write(json.dumps({"ts": 2.0, "run_id": "new",
                                     "event": "run_start", "graph": "fresh"}) + "\n")
                fh.flush()
                _time.sleep(0.1)
                fh.write(json.dumps({"ts": 3.0, "run_id": "new",
                                     "event": "run_end", "status": "ok"}) + "\n")

        thread = threading.Thread(target=restart_writer)
        thread.start()
        rc = watch_main([str(path), "--follow", "--interval", "0.02",
                         "--timeout", "10", "--validate"])
        thread.join(5)
        assert rc == 0
        captured = capsys.readouterr()
        assert "stream restarted" in captured.err
        assert "fresh" in captured.out
