"""Metamorphic relations: they hold on every family and catch broken counters."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from conftest import graph_strategy
from repro.graph.coo import COOGraph
from repro.testing.metamorphic import (
    ALL_RELATIONS,
    RELATION_NAMES,
    MetamorphicRelation,
    check_all_relations,
)


class TestRelationsHold:
    def test_all_relations_on_every_family(self, graph_case, fuzz_rngs):
        """graph_case is parametrized over every fuzz family (pytest plugin)."""
        results = check_all_relations(
            graph_case.graph, fuzz_rngs.stream(f"mr/{graph_case.family}")
        )
        assert [r.relation for r in results] == list(RELATION_NAMES)
        for result in results:
            assert result.ok, f"{graph_case.family}: {result.relation}: {result.detail}"

    @settings(max_examples=20, deadline=None)
    @given(g=graph_strategy(max_nodes=25, max_edges=90))
    def test_all_relations_on_fuzzed_graphs(self, g):
        rng = np.random.default_rng(7)
        for result in check_all_relations(g, rng):
            assert result.ok, f"{result.relation}: {result.detail}"

    def test_relations_on_empty_graph(self):
        g = COOGraph.from_edges([], num_nodes=0)
        for result in check_all_relations(g, np.random.default_rng(0)):
            assert result.ok, f"{result.relation}: {result.detail}"


class TestRelationsDetectBugs:
    """A relation that never fails is decoration; prove each one has teeth."""

    def test_union_additivity_catches_constant_offset(self):
        # A counter that adds a constant violates additivity; emulate by
        # checking the relation math directly: T(G ⊔ G') == 2 T(G) is strict.
        g = COOGraph.from_edges([(0, 1), (1, 2), (0, 2)], num_nodes=3)
        relation = next(r for r in ALL_RELATIONS if r.name == "union-additivity")
        result = relation.check(g, np.random.default_rng(0))
        assert result.ok
        assert "T(G)=1" in result.detail

    def test_broken_relation_reports_detail(self):
        broken = MetamorphicRelation(
            "always-broken",
            "a relation that cannot hold, to exercise the failure path",
            lambda graph, rng: (False, "synthetic violation"),
        )
        result = broken.check(
            COOGraph.from_edges([(0, 1)], num_nodes=2), np.random.default_rng(0)
        )
        assert not result.ok
        assert not bool(result)
        assert result.detail == "synthetic violation"


class TestBatchSplitInvariance:
    """Dedicated cases for the batched-ingest relation (chunked == monolithic)."""

    def _relation(self) -> MetamorphicRelation:
        return next(r for r in ALL_RELATIONS if r.name == "batch-split-invariance")

    @settings(max_examples=30, deadline=None)
    @given(g=graph_strategy(max_nodes=30, max_edges=120))
    def test_holds_on_fuzzed_graphs(self, g):
        # Fresh rng per example so batch size / capacity / K vary widely,
        # covering both the no-overflow (bitwise) and overflow branches.
        result = self._relation().check(g, np.random.default_rng(g.num_edges + 1))
        assert result.ok, result.detail

    @pytest.mark.parametrize("seed", range(8))
    def test_holds_across_batch_size_draws(self, seed):
        g = COOGraph.from_edges(
            [(i % 11, (i * 7 + 3) % 11) for i in range(40)], num_nodes=11
        ).canonicalize()
        result = self._relation().check(g, np.random.default_rng(seed))
        assert result.ok, result.detail

    def test_detail_names_the_drawn_parameters(self):
        g = COOGraph.from_edges([(0, 1), (1, 2), (0, 2)], num_nodes=3)
        result = self._relation().check(g, np.random.default_rng(5))
        assert result.ok
        assert "batch=" in result.detail and "cap=" in result.detail

    def test_empty_graph_is_trivially_ok(self):
        g = COOGraph.from_edges([], num_nodes=0)
        result = self._relation().check(g, np.random.default_rng(0))
        assert result.ok
        assert "empty" in result.detail


class TestRelationMetadata:
    def test_every_relation_documented(self):
        for relation in ALL_RELATIONS:
            assert relation.description
            assert relation.name

    @pytest.mark.parametrize("name", RELATION_NAMES)
    def test_names_unique_and_stable(self, name):
        assert RELATION_NAMES.count(name) == 1
