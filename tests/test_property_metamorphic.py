"""Metamorphic relations: they hold on every family and catch broken counters."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from conftest import graph_strategy
from repro.graph.coo import COOGraph
from repro.testing.metamorphic import (
    ALL_RELATIONS,
    RELATION_NAMES,
    MetamorphicRelation,
    check_all_relations,
)


class TestRelationsHold:
    def test_all_relations_on_every_family(self, graph_case, fuzz_rngs):
        """graph_case is parametrized over every fuzz family (pytest plugin)."""
        results = check_all_relations(
            graph_case.graph, fuzz_rngs.stream(f"mr/{graph_case.family}")
        )
        assert [r.relation for r in results] == list(RELATION_NAMES)
        for result in results:
            assert result.ok, f"{graph_case.family}: {result.relation}: {result.detail}"

    @settings(max_examples=20, deadline=None)
    @given(g=graph_strategy(max_nodes=25, max_edges=90))
    def test_all_relations_on_fuzzed_graphs(self, g):
        rng = np.random.default_rng(7)
        for result in check_all_relations(g, rng):
            assert result.ok, f"{result.relation}: {result.detail}"

    def test_relations_on_empty_graph(self):
        g = COOGraph.from_edges([], num_nodes=0)
        for result in check_all_relations(g, np.random.default_rng(0)):
            assert result.ok, f"{result.relation}: {result.detail}"


class TestRelationsDetectBugs:
    """A relation that never fails is decoration; prove each one has teeth."""

    def test_union_additivity_catches_constant_offset(self):
        # A counter that adds a constant violates additivity; emulate by
        # checking the relation math directly: T(G ⊔ G') == 2 T(G) is strict.
        g = COOGraph.from_edges([(0, 1), (1, 2), (0, 2)], num_nodes=3)
        relation = next(r for r in ALL_RELATIONS if r.name == "union-additivity")
        result = relation.check(g, np.random.default_rng(0))
        assert result.ok
        assert "T(G)=1" in result.detail

    def test_broken_relation_reports_detail(self):
        broken = MetamorphicRelation(
            "always-broken",
            "a relation that cannot hold, to exercise the failure path",
            lambda graph, rng: (False, "synthetic violation"),
        )
        result = broken.check(
            COOGraph.from_edges([(0, 1)], num_nodes=2), np.random.default_rng(0)
        )
        assert not result.ok
        assert not bool(result)
        assert result.detail == "synthetic violation"


class TestRelationMetadata:
    def test_every_relation_documented(self):
        for relation in ALL_RELATIONS:
            assert relation.description
            assert relation.name

    @pytest.mark.parametrize("name", RELATION_NAMES)
    def test_names_unique_and_stable(self, name):
        assert RELATION_NAMES.count(name) == 1
