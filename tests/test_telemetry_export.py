"""Exporters: run reports, schema validation, CSV, Chrome trace, profile."""

from __future__ import annotations

import json

import pytest

from repro import PimTriangleCounter
from repro.telemetry import (
    RUN_REPORT_SCHEMA,
    MetricsRegistry,
    RunReport,
    SpanRecord,
    Telemetry,
    chrome_trace,
    metrics_to_csv,
    render_profile,
    validate_run_report,
    write_chrome_trace,
)


@pytest.fixture
def run(small_graph):
    tel = Telemetry(detail=True)
    counter = PimTriangleCounter(num_colors=3, seed=1, telemetry=tel)
    result = counter.count(small_graph)
    return result, tel


class TestRunReport:
    def test_from_result_validates(self, small_graph, run):
        result, _ = run
        report = RunReport.from_result(
            result, graph=small_graph, config={"colors": 3, "seed": 1}
        )
        data = report.to_dict()
        assert data["schema"] == RUN_REPORT_SCHEMA
        assert validate_run_report(data) == []
        assert data["graph"]["num_edges"] == small_graph.num_edges
        assert data["config"]["colors"] == 3
        assert data["result"]["count"] == result.count
        paths = [s["path"] for s in data["spans"]["spans"]]
        assert paths == ["setup", "sample_creation", "triangle_count"]

    def test_metrics_sections_split(self, run):
        result, _ = run
        data = RunReport.from_result(result).to_dict()
        assert "pim.edges_routed" in data["metrics"]
        assert all(not k.startswith("executor.worker_wall") for k in data["metrics"])

    def test_write_json_roundtrip(self, tmp_path, run):
        result, _ = run
        out = tmp_path / "report.json"
        RunReport.from_result(result).write_json(str(out))
        assert validate_run_report(json.loads(out.read_text())) == []

    def test_telemetry_free_result_yields_empty_sections(self, triangle_graph):
        counter = PimTriangleCounter(num_colors=2, seed=1, telemetry=Telemetry(enabled=False))
        report = RunReport.from_result(counter.count(triangle_graph))
        assert report.spans["spans"] == []
        assert report.metrics == {}


class TestValidation:
    def test_rejects_wrong_schema(self):
        errors = validate_run_report({"schema": "nope"})
        assert any("schema" in e for e in errors)

    def test_rejects_non_object(self):
        assert validate_run_report([]) == ["report: not a JSON object"]

    def test_flags_missing_sections_and_bad_spans(self):
        data = {
            "schema": RUN_REPORT_SCHEMA,
            "graph": {},
            "config": {},
            "result": {"phases": {}, "estimate": 0, "num_colors": 1, "num_dpus": 1},
            "spans": {"spans": [{"name": "x"}]},
            "metrics": {"m": {"kind": "rocket"}},
            "volatile_metrics": {},
        }
        errors = validate_run_report(data)
        assert any("span missing 'path'" in e for e in errors)
        assert any("unknown kind 'rocket'" in e for e in errors)


class TestCsv:
    def test_flattens_every_kind(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        csv = metrics_to_csv(reg.snapshot())
        lines = csv.strip().splitlines()
        assert lines[0] == "name,kind,field,value"
        assert "c,counter,value,2.0" in lines
        assert "g,gauge,value,7.0" in lines
        assert "h,histogram,le_1.0,1" in lines
        assert "h,histogram,le_inf,0" in lines
        assert "h,histogram,count,1" in lines


class TestChromeTrace:
    def test_wall_and_sim_tracks(self, run):
        result, tel = run
        doc = chrome_trace(tel, result.trace)
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        pids = {e["pid"] for e in events}
        assert pids == {1, 2}
        span_events = [e for e in events if e.get("cat") == "span"]
        assert {"setup", "sample_creation", "triangle_count"} <= {
            e["name"] for e in span_events
        }
        sim_events = [e for e in events if e.get("cat") == "sim"]
        assert len(sim_events) == len(result.trace.events)
        # simulated track is laid out cumulatively
        starts = [e["ts"] for e in sim_events]
        assert starts == sorted(starts)

    def test_nesting_depth_maps_to_tid(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        events = [e for e in chrome_trace(tel)["traceEvents"] if e.get("cat") == "span"]
        by_name = {e["name"]: e for e in events}
        assert by_name["outer"]["tid"] == 0
        assert by_name["inner"]["tid"] == 1

    def test_write_chrome_trace(self, tmp_path):
        tel = Telemetry()
        with tel.span("x"):
            pass
        out = tmp_path / "trace.json"
        write_chrome_trace(str(out), tel)
        data = json.loads(out.read_text())
        assert any(e.get("name") == "x" for e in data["traceEvents"])


class TestProfile:
    def test_aggregates_and_sorts_by_sim_self(self):
        tel = Telemetry()
        with tel.span("launch"):
            tel.attach_records(
                [SpanRecord(name="dpu0", wall_seconds=0.0, sim_seconds=0.5)]
            )
        with tel.span("scatter"):
            pass
        with tel.span("scatter"):
            pass
        text = render_profile(tel)
        lines = text.splitlines()
        assert lines[0].split() == [
            "span", "calls", "sim", "total", "sim", "self",
            "wall", "total", "wall", "self",
        ]
        # dpu0 carries all simulated self-time, so it ranks first
        assert lines[1].startswith("launch/dpu0")
        scatter_row = next(l for l in lines if l.startswith("scatter"))
        assert scatter_row.split()[1] == "2"  # two calls aggregated

    def test_no_negative_self_times(self, run):
        _, tel = run
        for line in render_profile(tel).splitlines()[1:]:
            assert "-" not in line.split(None, 1)[1]
