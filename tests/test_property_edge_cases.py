"""Edge-case regressions: the boundaries the paper's corrections must survive.

Covers the degenerate inputs (empty graph, single edge), graphs whose
triangles are *all* monochromatic — the worst case of the Sec. 3.1 correction
— at ``C=1`` and ``C=2``, and the reservoir path with capacity ``M`` larger
than the edge count (scales must collapse to exactly 1.0).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.rng import RngFactory
from repro.coloring.partition import ColoringPartitioner
from repro.core.api import PimTriangleCounter
from repro.core.host import PimTcOptions
from repro.graph.coo import COOGraph
from repro.graph.triangles import count_triangles
from repro.streaming.reservoir import EdgeReservoir, reservoir_scale


def _pipeline_colors(num_colors: int, seed: int, num_nodes: int) -> np.ndarray:
    """Node colors exactly as the pipeline will draw them for this seed.

    Mirrors the host: ``ColoringPartitioner(C, RngFactory(seed).stream("coloring"))``.
    """
    partitioner = ColoringPartitioner(num_colors, RngFactory(seed).stream("coloring"))
    return partitioner.node_colors(np.arange(num_nodes, dtype=np.int64))


def _monochromatic_clique(num_colors: int, seed: int, clique_size: int) -> COOGraph:
    """A clique whose nodes all share one color under the pipeline's hash."""
    num_nodes = 64
    colors = _pipeline_colors(num_colors, seed, num_nodes)
    same = np.flatnonzero(colors == colors[0])
    if same.size < clique_size:
        pytest.fail(
            f"seed {seed} gives only {same.size} nodes of color {colors[0]}; "
            "pick another seed"
        )
    members = same[:clique_size]
    edges = [
        (int(members[i]), int(members[j]))
        for i in range(clique_size)
        for j in range(i + 1, clique_size)
    ]
    return COOGraph.from_edges(edges, num_nodes=num_nodes)


class TestDegenerateGraphs:
    @pytest.mark.parametrize("num_nodes", [0, 1, 5])
    def test_empty_graph(self, num_nodes):
        g = COOGraph.from_edges([], num_nodes=num_nodes)
        result = PimTriangleCounter(num_colors=3).count(g)
        assert result.count == 0
        assert result.is_exact
        assert int(result.per_dpu_counts.sum()) == 0

    def test_single_edge(self):
        g = COOGraph.from_edges([(0, 1)], num_nodes=2)
        result = PimTriangleCounter(num_colors=3).count(g)
        assert result.count == 0
        assert result.edges_input == 1


class TestAllMonochromaticTriangles:
    """Every triangle lands on ``C`` cores; the correction must remove C-1."""

    def test_c1_everything_is_monochromatic(self):
        # With one color there is one core and every triangle is mono.
        g = _monochromatic_clique(num_colors=1, seed=0, clique_size=6)
        truth = count_triangles(g)
        assert truth == 20  # C(6,3)
        result = PimTriangleCounter(options=PimTcOptions(num_colors=1, seed=0)).count(g)
        assert result.count == truth
        assert result.num_dpus == 1
        assert int(result.per_dpu_counts.sum()) == truth

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_c2_all_mono_corrected_exactly(self, seed):
        c = 2
        g = _monochromatic_clique(num_colors=c, seed=seed, clique_size=6)
        truth = count_triangles(g)
        assert truth == 20
        result = PimTriangleCounter(options=PimTcOptions(num_colors=c, seed=seed)).count(g)
        assert result.count == truth
        # Each mono triangle is counted by exactly C cores before correction.
        assert int(result.per_dpu_counts.sum()) == c * truth

    def test_c2_mixed_graph_still_exact(self):
        # Mono clique plus extra cross-color edges: correction only removes
        # the duplicated mono copies, never the bichromatic triangles.
        seed, c = 3, 2
        g = _monochromatic_clique(num_colors=c, seed=seed, clique_size=5)
        colors = _pipeline_colors(c, seed, g.num_nodes)
        other = np.flatnonzero(colors != colors[0])[:3]
        mono_nodes = np.flatnonzero(colors == colors[0])[:5]
        extra = [(int(a), int(b)) for a in mono_nodes for b in other]
        mixed = COOGraph.from_edges(
            list(zip(g.src.tolist(), g.dst.tolist())) + extra, num_nodes=g.num_nodes
        )
        truth = count_triangles(mixed)
        assert truth > 10  # the cross edges really added triangles
        result = PimTriangleCounter(options=PimTcOptions(num_colors=c, seed=seed)).count(mixed)
        assert result.count == truth


class TestReservoirLargerThanStream:
    def test_scale_is_one_below_capacity(self):
        for t in range(0, 10):
            assert reservoir_scale(10, t) == 1.0
        assert reservoir_scale(10, 11) < 1.0

    def test_reservoir_keeps_everything_when_oversized(self):
        rng = np.random.default_rng(0)
        src = np.arange(20, dtype=np.int64)
        dst = src + 1
        reservoir = EdgeReservoir(capacity=50, rng=rng)
        reservoir.offer_batch(src, dst)
        kept_src, kept_dst = reservoir.edges()
        np.testing.assert_array_equal(np.sort(kept_src), src)
        assert kept_src.size == 20

    def test_pipeline_exact_when_capacity_exceeds_edges(self, small_graph):
        truth = count_triangles(small_graph)
        result = PimTriangleCounter(
            options=PimTcOptions(
                num_colors=3,
                reservoir_capacity=small_graph.num_edges * 10,
                seed=4,
            )
        ).count(small_graph)
        assert result.count == truth
        assert result.is_exact
        np.testing.assert_array_equal(
            result.reservoir_scales, np.ones_like(result.reservoir_scales)
        )
