"""Probe-kernel variant: functional equivalence + cost structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro import PimTriangleCounter
from repro.common.errors import ConfigurationError
from repro.core.host import PimTcOptions
from repro.core.kernel_tc_fast import fast_count
from repro.core.kernel_tc_probe import ProbeTriangleCountKernel, probe_count
from repro.graph.datasets import get_dataset
from repro.graph.generators import erdos_renyi
from repro.graph.triangles import count_triangles

from conftest import graph_strategy


class TestProbeCount:
    def test_matches_oracle(self, small_graph):
        res = probe_count(small_graph.src, small_graph.dst, small_graph.num_nodes)
        assert res.triangles == count_triangles(small_graph)

    def test_empty(self):
        res = probe_count(np.array([], dtype=np.int64), np.array([], dtype=np.int64), 3)
        assert res.triangles == 0 and res.probes == 0

    @settings(max_examples=25, deadline=None)
    @given(g=graph_strategy(max_nodes=22, max_edges=80))
    def test_property_matches_merge_kernel(self, g):
        probe = probe_count(g.src, g.dst, g.num_nodes)
        merge = fast_count(g.src, g.dst, g.num_nodes)
        assert probe.triangles == merge.triangles

    def test_probe_total_is_forward_degree_sum(self, small_graph):
        res = probe_count(small_graph.src, small_graph.dst, small_graph.num_nodes)
        from repro.core.orient import orient_and_sort
        from repro.core.region_index import build_region_index

        u, v, _ = orient_and_sort(small_graph.src, small_graph.dst)
        idx = build_region_index(u)
        assert res.probes == int(idx.degrees_of(v).sum())

    def test_probe_steps_include_log_factor(self, small_graph):
        res = probe_count(small_graph.src, small_graph.dst, small_graph.num_nodes)
        assert res.probe_steps >= res.probes  # log2(m) >= 1


class TestKernelOnDpu:
    def make_dpu(self):
        from repro.pimsim.config import CostModel, DpuConfig
        from repro.pimsim.dpu import Dpu

        return Dpu(dpu_id=0, config=DpuConfig(), cost=CostModel())

    def test_stores_count(self, small_graph):
        dpu = self.make_dpu()
        dpu.mram.store("sample_src", small_graph.src.astype(np.int32), count_write=False)
        dpu.mram.store("sample_dst", small_graph.dst.astype(np.int32), count_write=False)
        ProbeTriangleCountKernel(num_nodes=small_graph.num_nodes).run(dpu)
        assert int(dpu.mram.load("triangle_count")[0]) == count_triangles(small_graph)

    def test_missing_sample_raises(self):
        from repro.common.errors import KernelLaunchError

        with pytest.raises(KernelLaunchError):
            ProbeTriangleCountKernel(num_nodes=3).run(self.make_dpu())

    def test_probe_costs_more_dma_requests_than_merge(self, rngs):
        """Random probing's request count dwarfs the merge's streaming DMA."""
        from repro.core.kernel_tc_fast import TriangleCountKernel

        g = erdos_renyi(200, 2500, rngs.stream("pk")).canonicalize()
        merge_dpu = self.make_dpu()
        probe_dpu = self.make_dpu()
        for dpu in (merge_dpu, probe_dpu):
            dpu.mram.store("sample_src", g.src.astype(np.int32), count_write=False)
            dpu.mram.store("sample_dst", g.dst.astype(np.int32), count_write=False)
        TriangleCountKernel(num_nodes=g.num_nodes).run(merge_dpu)
        ProbeTriangleCountKernel(num_nodes=g.num_nodes).run(probe_dpu)
        assert probe_dpu.run_stats().dma_requests > 3 * merge_dpu.run_stats().dma_requests


class TestPipelineVariant:
    def test_option_validated(self):
        with pytest.raises(ConfigurationError):
            PimTcOptions(kernel_variant="quantum")

    def test_probe_pipeline_exact(self, small_graph):
        counter = PimTriangleCounter(num_colors=3, seed=2).with_options(
            kernel_variant="probe"
        )
        assert counter.count(small_graph).count == count_triangles(small_graph)

    def test_merge_faster_on_pim(self):
        """The ablation's headline: streaming merge beats random probes."""
        g = get_dataset("v1r", "tiny")
        merge = PimTriangleCounter(num_colors=3, seed=1).count(g)
        probe = (
            PimTriangleCounter(num_colors=3, seed=1)
            .with_options(kernel_variant="probe")
            .count(g)
        )
        assert merge.count == probe.count
        assert merge.triangle_count_seconds < probe.triangle_count_seconds
