"""Configuration model + power-law degree sequences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.graph.generators import configuration_model, powerlaw_degree_sequence
from repro.graph.stats import degree_stats


class TestPowerlawSequence:
    def test_even_sum(self, rng):
        deg = powerlaw_degree_sequence(501, 2.5, rng)
        assert int(deg.sum()) % 2 == 0

    def test_bounds_respected(self, rng):
        deg = powerlaw_degree_sequence(1000, 2.2, rng, min_degree=2, max_degree=50)
        assert deg.min() >= 2
        assert deg.max() <= 50

    def test_heavier_tail_with_smaller_exponent(self, rng):
        light = powerlaw_degree_sequence(5000, 3.5, rng, max_degree=400)
        heavy = powerlaw_degree_sequence(5000, 1.8, rng, max_degree=400)
        assert heavy.mean() > light.mean()

    def test_rejects_exponent_below_one(self, rng):
        with pytest.raises(ConfigurationError):
            powerlaw_degree_sequence(10, 0.9, rng)

    def test_rejects_bad_bounds(self, rng):
        with pytest.raises(ConfigurationError):
            powerlaw_degree_sequence(10, 2.0, rng, min_degree=5, max_degree=3)


class TestConfigurationModel:
    def test_stub_count_preserved_raw(self, rng):
        deg = np.array([3, 3, 2, 2, 2])
        g = configuration_model(deg, rng)
        assert g.num_edges == int(deg.sum()) // 2  # raw stubs, pre-erasure

    def test_degrees_approximately_prescribed(self, rng):
        deg = powerlaw_degree_sequence(2000, 2.5, rng, min_degree=2, max_degree=80)
        g = configuration_model(deg, rng).canonicalize()
        realized = g.degrees()
        # Erasure only removes; heavy nodes dip a little, light nodes match.
        assert np.all(realized <= deg)
        assert realized.sum() >= 0.9 * deg.sum()

    def test_prescribed_hub_realized(self, rng):
        """The tool's purpose: build a graph with an exact planned hub ratio."""
        deg = np.full(3000, 4, dtype=np.int64)
        deg[0] = 1200  # one node with 300x the typical degree
        if deg.sum() % 2:
            deg[1] += 1
        g = configuration_model(deg, rng).canonicalize()
        max_deg, avg_deg = degree_stats(g)
        assert max_deg > 150 * 4  # hub survives erasure at >= half strength

    def test_rejects_odd_sum(self, rng):
        with pytest.raises(ConfigurationError):
            configuration_model(np.array([1, 1, 1]), rng)

    def test_rejects_negative(self, rng):
        with pytest.raises(ConfigurationError):
            configuration_model(np.array([2, -2]), rng)

    def test_deterministic(self, rngs):
        deg = np.array([2, 2, 2, 2])
        a = configuration_model(deg, rngs.stream("c"))
        b = configuration_model(deg, rngs.stream("c"))
        np.testing.assert_array_equal(a.src, b.src)
