"""Differential runner: full kernel × executor × baseline agreement."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from conftest import graph_strategy
from repro.graph.coo import COOGraph
from repro.testing.differential import (
    BASELINE_NAMES,
    EXECUTOR_GRID,
    KERNEL_NAMES,
    PIPELINE_VARIANTS,
    DifferentialReport,
    DifferentialRunner,
)


class TestGridCoverage:
    def test_every_axis_covered_on_one_graph(self, differential_runner, small_graph):
        report = differential_runner.run(small_graph)
        assert report.ok, report.failures
        labels = set(report.counts)
        # Kernel axis.
        for kernel in KERNEL_NAMES:
            assert f"kernel:{kernel}" in labels
        # Baseline axis (dense applies: the graph is small).
        for baseline in BASELINE_NAMES:
            assert f"baseline:{baseline}" in labels
        # Pipeline variant × executor axis — the full cross product.
        for variant in PIPELINE_VARIANTS:
            for engine in EXECUTOR_GRID:
                assert f"pipeline:{variant}×{engine}" in labels
        assert "oracle" in labels

    def test_all_counts_equal_truth(self, differential_runner, small_graph):
        report = differential_runner.run(small_graph)
        assert set(report.counts.values()) == {report.truth}

    def test_runs_on_every_family(self, differential_runner, graph_case):
        report = differential_runner.run(graph_case.graph, expected=graph_case.exact)
        assert report.ok, report.failures
        if graph_case.exact is not None:
            assert report.truth == graph_case.exact


class TestMismatchDetection:
    def test_wrong_expected_count_is_flagged(self, small_graph):
        runner = DifferentialRunner()
        truth = runner.run(small_graph).truth
        report = runner.run(small_graph, expected=truth + 1)
        assert not report.ok
        # Every implementation (including the oracle) disagrees with the lie.
        assert len(report.mismatches) == len(report.counts)
        assert any("oracle" in m for m in report.mismatches)

    def test_report_record_flags_bad_count(self):
        report = DifferentialReport(graph_name="g", truth=5)
        report.record("impl:good", 5)
        report.record("impl:bad", 6)
        assert report.counts == {"impl:good": 5, "impl:bad": 6}
        assert report.mismatches == ["impl:bad: counted 6, oracle says 5"]
        assert not report.ok
        assert "FAILURES" in report.summary()


class TestExecutorParity:
    def test_parity_checked_across_engines(self, small_graph):
        """Simulated clocks, charges and traces are engine-invariant."""
        runner = DifferentialRunner(num_colors=4, jobs=2)
        report = runner.run(small_graph)
        assert report.parity_failures == []

    def test_parity_detects_divergence(self, small_graph):
        """Corrupt one engine's result and the parity check must fire."""
        runner = DifferentialRunner(num_colors=3)
        results = runner.pipeline_results(small_graph, "merge")
        results["thread"].per_dpu_counts = results["thread"].per_dpu_counts + 1
        report = DifferentialReport(graph_name="g", truth=0)
        runner._check_parity("merge", results, report)
        assert any("per-DPU counts differ" in f for f in report.parity_failures)


class TestPropertyDifferential:
    @settings(max_examples=10, deadline=None)
    @given(g=graph_strategy(max_nodes=20, max_edges=60))
    def test_agreement_on_fuzzed_graphs(self, g):
        # Light grid for hypothesis: kernels + baselines + serial pipeline.
        runner = DifferentialRunner(executors=("serial",), variants=("merge",))
        report = runner.run(g)
        assert report.ok, report.failures

    def test_empty_and_single_edge(self):
        runner = DifferentialRunner()
        for edges, n in ([], 0), ([], 5), ([(0, 1)], 2):
            g = COOGraph.from_edges(edges, num_nodes=n)
            report = runner.run(g, expected=0)
            assert report.ok, (edges, n, report.failures)
