"""Multi-session triangle-counting service: protocol, admission, parity.

The load-bearing guarantees (see docs/service.md):

* a session's count is bit-identical to a standalone
  :class:`DynamicPimCounter` replaying the same batches — the service adds
  scheduling, never arithmetic — including with concurrent sessions;
* admission control rejects (max sessions, queue depth, memory budget)
  instead of degrading accepted work;
* every session leaves a join-complete NDJSON stream that `repro-watch`
  renders and `repro-validate --require-complete` accepts.
"""

from __future__ import annotations

import asyncio
import threading
import time
from contextlib import contextmanager

import numpy as np
import pytest

from repro.core.dynamic import DynamicPimCounter
from repro.graph.coo import COOGraph
from repro.graph.generators import erdos_renyi
from repro.graph.triangles import count_triangles
from repro.observability.logjson import (
    load_ndjson,
    stream_status,
    validate_ndjson_events,
)
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ServiceError,
    TriangleService,
)
from repro.service.protocol import (
    MAX_FRAME_BYTES,
    ProtocolError,
    encode_frame,
)
from repro.service.session import GraphSession, SessionError


# ----------------------------------------------------------------- harness
class _ServiceThread:
    """Run a TriangleService on its own event loop in a daemon thread."""

    def __init__(self, **config) -> None:
        self.service = TriangleService(ServiceConfig(port=0, **config))
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(10), "service failed to start"

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._ready.set()
        self.loop.run_forever()

    @property
    def url(self) -> str:
        return f"127.0.0.1:{self.service.port}"

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@contextmanager
def running_service(**config):
    server = _ServiceThread(**config)
    try:
        yield server
    finally:
        server.stop()


def _standalone(batches, num_nodes, *, num_colors, seed, deletions=()):
    """Replay the same batches on a bare counter (the parity oracle)."""
    dyn = DynamicPimCounter(num_nodes, num_colors=num_colors, seed=seed)
    for batch in batches:
        dyn.apply_update(batch)
    for batch in deletions:
        dyn.apply_deletion(batch)
    return dyn


def _drive(url, name, graph, *, num_colors, seed, batch_edges=100):
    """Open a session, stream `graph`, count, close; returns the count view."""
    with ServiceClient(url) as client:
        client.open_session(
            name, num_nodes=graph.num_nodes, num_colors=num_colors, seed=seed
        )
        client.insert_graph(name, graph, batch_edges=batch_edges)
        view = client.count(name)
        client.close_session(name)
    return view


# ------------------------------------------------------------------- parity
class TestCountParity:
    def test_session_matches_standalone_and_oracle(self, small_graph):
        with running_service() as server:
            view = _drive(server.url, "solo", small_graph, num_colors=3, seed=7)
        batches = [small_graph.slice(s, min(s + 100, small_graph.num_edges))
                   for s in range(0, small_graph.num_edges, 100)]
        dyn = _standalone(batches, small_graph.num_nodes, num_colors=3, seed=7)
        assert view["triangles"] == dyn.triangles == count_triangles(small_graph)
        assert view["cumulative_edges"] == small_graph.num_edges

    def test_two_concurrent_sessions_bit_identical(self, rngs):
        g1 = erdos_renyi(70, 350, rngs.stream("g1"), name="g1").canonicalize()
        g2 = erdos_renyi(90, 500, rngs.stream("g2"), name="g2").canonicalize()
        results: dict[str, dict] = {}
        errors: list[BaseException] = []

        def drive(name, graph, colors, seed):
            try:
                results[name] = _drive(
                    server.url, name, graph, num_colors=colors, seed=seed,
                    batch_edges=50,
                )
            except BaseException as exc:  # surfaced in the main thread
                errors.append(exc)

        with running_service(max_sessions=4) as server:
            threads = [
                threading.Thread(target=drive, args=("alpha", g1, 3, 11)),
                threading.Thread(target=drive, args=("beta", g2, 4, 22)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(30)
        assert not errors, errors
        for name, graph, colors, seed in (
            ("alpha", g1, 3, 11), ("beta", g2, 4, 22)
        ):
            batches = [graph.slice(s, min(s + 50, graph.num_edges))
                       for s in range(0, graph.num_edges, 50)]
            dyn = _standalone(batches, graph.num_nodes, num_colors=colors, seed=seed)
            assert results[name]["triangles"] == dyn.triangles == count_triangles(graph)

    def test_deletions_through_the_service(self, small_graph):
        half = small_graph.slice(0, small_graph.num_edges // 2)
        rest = small_graph.slice(small_graph.num_edges // 2, small_graph.num_edges)
        with running_service() as server:
            with ServiceClient(server.url) as client:
                client.open_session("fd", num_nodes=small_graph.num_nodes,
                                    num_colors=3, seed=2)
                client.insert_graph("fd", small_graph, batch_edges=80)
                removed = client.delete("fd", half.src, half.dst)
                view = client.count("fd")
                client.close_session("fd")
        assert removed["op"] == "delete"
        assert removed["removed_edges"] == half.num_edges
        assert removed["new_edges"] == 0
        assert view["triangles"] == count_triangles(rest)
        assert view["cumulative_edges"] == rest.num_edges

    def test_count_observes_prior_batches(self, triangle_graph):
        # count travels the same queue as the batches: no lost updates.
        with running_service() as server:
            with ServiceClient(server.url) as client:
                client.open_session("ord", num_nodes=4, num_colors=2, seed=0)
                total = 0
                for u, v in triangle_graph.iter_edges():
                    client.insert("ord", [u], [v])
                    total += 1
                    assert client.count("ord")["cumulative_edges"] == total
                assert client.count("ord")["triangles"] == 1
                client.close_session("ord")


# --------------------------------------------------------------- admission
class TestAdmission:
    def test_max_sessions_rejected(self):
        with running_service(max_sessions=1) as server:
            with ServiceClient(server.url) as client:
                client.open_session("one", num_nodes=10)
                with pytest.raises(ServiceError) as err:
                    client.open_session("two", num_nodes=10)
                assert err.value.code == "admission_rejected"
                client.close_session("one")
                client.open_session("two", num_nodes=10)  # slot freed by close
                client.close_session("two")

    def test_duplicate_session_rejected(self):
        with running_service() as server:
            with ServiceClient(server.url) as client:
                client.open_session("dup", num_nodes=10)
                with pytest.raises(ServiceError) as err:
                    client.open_session("dup", num_nodes=10)
                assert err.value.code == "duplicate_session"

    def test_memory_budget_rejection(self, small_graph):
        # Budget covers the first small insert but not a follow-up big one;
        # accepted work is untouched by the rejection.
        dyn = DynamicPimCounter(small_graph.num_nodes, num_colors=3, seed=1)
        budget = dyn.routed_bytes_for(60)
        small = small_graph.slice(0, 40)
        big = small_graph.slice(40, small_graph.num_edges)
        with running_service() as server:
            with ServiceClient(server.url) as client:
                client.open_session(
                    "tight", num_nodes=small_graph.num_nodes, num_colors=3,
                    seed=1, memory_budget_bytes=budget,
                )
                client.insert("tight", small.src, small.dst)
                with pytest.raises(ServiceError) as err:
                    client.insert("tight", big.src, big.dst)
                assert err.value.code == "budget_exceeded"
                view = client.count("tight")
                assert view["triangles"] == count_triangles(small)
                stats = client.stats("tight")
                assert stats["memory_budget_bytes"] == budget
                assert stats["resident_bytes"] <= budget
                client.close_session("tight")

    def test_queue_depth_backpressure(self):
        async def scenario():
            session = GraphSession("bp", 16, num_colors=2, max_queue_depth=2)
            # No worker: queued batches stay pending, so the third submit
            # must bounce with backpressure instead of buffering.
            pending = [
                asyncio.ensure_future(session.submit("insert", [0], [1])),
                asyncio.ensure_future(session.submit("insert", [1], [2])),
            ]
            await asyncio.sleep(0)  # let both reach the queue
            with pytest.raises(SessionError) as err:
                await session.submit("insert", [2], [3])
            assert err.value.code == "backpressure"
            await session.close()  # fails the queued futures, frees the DPUs
            results = await asyncio.gather(*pending, return_exceptions=True)
            assert all(
                isinstance(r, SessionError) and r.code == "session_closed"
                for r in results
            )

        asyncio.run(scenario())

    def test_idle_sessions_are_reaped(self, tmp_path):
        with running_service(
            idle_timeout=0.3, event_dir=str(tmp_path)
        ) as server:
            with ServiceClient(server.url) as client:
                client.open_session("sleepy", num_nodes=10)
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    try:
                        client.stats("sleepy")
                    except ServiceError as err:
                        assert err.code == "unknown_session"
                        break
                    time.sleep(0.1)
                else:
                    pytest.fail("idle session was never reaped")
            assert server.service.sessions_expired == 1
        # Expiry is the graceful path: the stream still join-completes.
        records = load_ndjson(tmp_path / "sleepy.ndjson")
        assert stream_status(records) == "ok"


# ------------------------------------------------------------- event streams
class TestEventStreams:
    def test_stream_is_schema_valid_and_join_complete(self, tmp_path, small_graph):
        with running_service(event_dir=str(tmp_path)) as server:
            view = _drive(server.url, "logged", small_graph, num_colors=3,
                          seed=7, batch_edges=64)
        path = tmp_path / "logged.ndjson"
        records = load_ndjson(path)
        assert validate_ndjson_events(records) == []
        assert stream_status(records) == "ok"
        events = [r["event"] for r in records]
        assert events[0] == "run_start"
        assert events[-1] == "run_end"
        hb = [r for r in records if r["event"] == "heartbeat"]
        assert len(hb) == -(-small_graph.num_edges // 64)
        assert hb[-1]["edges_streamed"] == small_graph.num_edges
        assert hb[-1]["peak_routed_bytes"] > 0
        est = [r for r in records if r["event"] == "estimate"]
        assert est and est[-1]["estimate"] == float(view["triangles"])

    def test_watch_and_validate_accept_a_session_stream(self, tmp_path, small_graph, capsys):
        from repro.observability.validate import main as validate_main
        from repro.observability.watch import main as watch_main

        with running_service(event_dir=str(tmp_path)) as server:
            _drive(server.url, "watched", small_graph, num_colors=2, seed=3)
        path = str(tmp_path / "watched.ndjson")
        assert validate_main([path, "--require-complete"]) == 0
        assert watch_main([path]) == 0
        assert "completed ok" in capsys.readouterr().out


# ---------------------------------------------------------------- protocol
class TestProtocol:
    def test_unknown_op_and_bad_arguments(self):
        with running_service() as server:
            with ServiceClient(server.url) as client:
                with pytest.raises(ServiceError) as err:
                    client.request("frobnicate")
                assert err.value.code == "invalid_request"
                with pytest.raises(ServiceError) as err:
                    client.request("_dispatch")  # private handlers unreachable
                assert err.value.code == "invalid_request"
                client.open_session("p", num_nodes=5)
                with pytest.raises(ServiceError) as err:
                    client.request("insert", session="p", src=[0, 1], dst=[1])
                assert err.value.code == "invalid_request"
                with pytest.raises(ServiceError) as err:
                    client.insert("p", [99], [1])  # node id out of range
                assert err.value.code == "invalid_request"
                with pytest.raises(ServiceError) as err:
                    client.request("open", session="bad name!", num_nodes=5)
                assert err.value.code == "invalid_request"
                with pytest.raises(ServiceError) as err:
                    client.count("ghost")
                assert err.value.code == "unknown_session"

    def test_oversized_frame_is_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * (MAX_FRAME_BYTES + 1)})

    def test_closed_session_rejects_further_ops(self, triangle_graph):
        with running_service() as server:
            with ServiceClient(server.url) as client:
                client.open_session("gone", num_nodes=4)
                client.insert("gone", triangle_graph.src, triangle_graph.dst)
                client.close_session("gone")
                with pytest.raises(ServiceError) as err:
                    client.insert("gone", [0], [1])
                assert err.value.code == "unknown_session"

    def test_close_frees_dpu_state(self, triangle_graph):
        async def scenario():
            session = GraphSession("free", 4, num_colors=2)
            session.start()
            await session.submit(
                "insert", triangle_graph.src, triangle_graph.dst
            )
            await session.close()
            assert session.counter.closed
            assert session.counter.resident_bytes == 0
            assert session.counter.dpus._freed

        asyncio.run(scenario())


class TestCliServeUrl:
    def test_count_via_serve_url(self, tmp_path, small_graph, capsys):
        from repro.cli import main as cli_main

        path = tmp_path / "g.el"
        with open(path, "w") as fh:
            for u, v in small_graph.iter_edges():
                fh.write(f"{u} {v}\n")
        with running_service(event_dir=str(tmp_path / "events")) as server:
            code = cli_main([
                str(path), "--serve-url", server.url, "--colors", "3",
                "--seed", "5", "--batch-edges", "100", "--session", "cli-smoke",
            ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"triangles (exact, via {server.url}" in out
        assert str(count_triangles(small_graph)) in out
        records = load_ndjson(tmp_path / "events" / "cli-smoke.ndjson")
        assert stream_status(records) == "ok"
