"""MRAM bank model: capacity, alignment, traffic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import MramCapacityError
from repro.pimsim.mram import Mram


@pytest.fixture
def bank() -> Mram:
    return Mram(capacity=1024)


class TestAllocation:
    def test_store_and_load(self, bank):
        arr = np.arange(10, dtype=np.int64)
        bank.store("edges", arr)
        np.testing.assert_array_equal(bank.load("edges"), arr)

    def test_alignment_rounds_up(self, bank):
        bank.store("x", np.zeros(3, dtype=np.int8))  # 3 bytes -> 8 aligned
        assert bank.used == 8

    def test_overflow_raises(self, bank):
        with pytest.raises(MramCapacityError):
            bank.store("big", np.zeros(200, dtype=np.int64))

    def test_replace_frees_old_size(self, bank):
        bank.store("x", np.zeros(64, dtype=np.int8))
        bank.store("x", np.zeros(32, dtype=np.int8))
        assert bank.used == 32

    def test_exact_fit_accepted(self, bank):
        bank.store("x", np.zeros(1024, dtype=np.int8))
        assert bank.free == 0

    def test_discard(self, bank):
        bank.store("x", np.zeros(16, dtype=np.int8))
        bank.discard("x")
        assert bank.used == 0
        assert not bank.has("x")

    def test_discard_missing_is_noop(self, bank):
        bank.discard("ghost")

    def test_free_all(self, bank):
        bank.store("a", np.zeros(8, dtype=np.int8))
        bank.store("b", np.zeros(8, dtype=np.int8))
        bank.free_all()
        assert bank.used == 0
        assert bank.symbols() == ()

    def test_fits(self, bank):
        assert bank.fits(1024)
        assert not bank.fits(1025)
        bank.store("x", np.zeros(512, dtype=np.int8))
        assert bank.fits(512)
        assert not bank.fits(513)


class TestTraffic:
    def test_write_counted(self, bank):
        bank.store("x", np.zeros(10, dtype=np.int64))
        assert bank.bytes_written == 80

    def test_write_not_counted_on_host_push(self, bank):
        bank.store("x", np.zeros(10, dtype=np.int64), count_write=False)
        assert bank.bytes_written == 0

    def test_read_counted(self, bank):
        bank.store("x", np.zeros(10, dtype=np.int64))
        bank.load("x")
        assert bank.bytes_read == 80

    def test_reset_traffic(self, bank):
        bank.store("x", np.zeros(10, dtype=np.int64))
        bank.load("x")
        bank.reset_traffic()
        assert bank.bytes_read == 0 and bank.bytes_written == 0
