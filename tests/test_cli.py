"""repro-count command-line tool."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graph.datasets import get_dataset
from repro.graph.io import write_edge_list
from repro.graph.triangles import count_triangles


class TestDatasetSpecs:
    def test_exact_count_printed(self, capsys):
        assert main(["dataset:orkut", "--tier", "tiny", "--colors", "4"]) == 0
        out = capsys.readouterr().out
        truth = count_triangles(get_dataset("orkut", "tiny"))
        assert f"triangles (exact): {truth}" in out

    def test_uniform_sampling_mode(self, capsys):
        assert main(
            ["dataset:orkut", "--tier", "tiny", "--colors", "4", "--uniform-p", "0.5"]
        ) == 0
        assert "estimated" in capsys.readouterr().out

    def test_trials_report_mean_std(self, capsys):
        assert main(
            [
                "dataset:v1r",
                "--tier",
                "tiny",
                "--colors",
                "4",
                "--uniform-p",
                "0.5",
                "--trials",
                "3",
            ]
        ) == 0
        assert "+/-" in capsys.readouterr().out

    def test_local_mode_prints_top_nodes(self, capsys):
        assert main(
            ["dataset:wikipedia", "--tier", "tiny", "--colors", "3", "--local", "--top", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "top 2 nodes" in out
        assert out.count("node ") >= 2

    def test_misra_gries_flag(self, capsys):
        assert main(
            [
                "dataset:wikipedia",
                "--tier",
                "tiny",
                "--colors",
                "4",
                "--misra-gries",
                "256:8",
            ]
        ) == 0

    def test_bad_mg_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["dataset:orkut", "--misra-gries", "1024"])

    def test_partitioner_flag(self, capsys):
        truth = count_triangles(get_dataset("wikipedia", "tiny"))
        assert main(
            ["dataset:wikipedia", "--tier", "tiny", "--colors", "4",
             "--partitioner", "degree"]
        ) == 0
        assert f"triangles (exact): {truth}" in capsys.readouterr().out

    def test_auto_partitioner_prints_decision(self, capsys):
        assert main(
            ["dataset:wikipedia", "--tier", "tiny", "--colors", "4",
             "--partitioner", "auto"]
        ) == 0
        out = capsys.readouterr().out
        assert "auto-tune: strategy=" in out

    def test_rebalance_flag_prints_events(self, capsys):
        assert main(
            ["dataset:wikipedia", "--tier", "tiny", "--colors", "4",
             "--batch-edges", "500", "--rebalance-cv", "0.0"]
        ) == 0
        assert "rebalances:" in capsys.readouterr().out


class TestTelemetryFlags:
    def test_metrics_out_writes_valid_run_report(self, tmp_path, capsys):
        import json

        from repro.telemetry import validate_run_report

        out = tmp_path / "report.json"
        assert main(
            ["dataset:orkut", "--tier", "tiny", "--colors", "4",
             "--metrics-out", str(out)]
        ) == 0
        assert f"metrics report written to {out}" in capsys.readouterr().out
        data = json.loads(out.read_text())
        assert validate_run_report(data) == []
        assert data["config"]["tier"] == "tiny"
        assert data["graph"]["name"]

    def test_metrics_out_csv(self, tmp_path):
        out = tmp_path / "metrics.csv"
        assert main(
            ["dataset:orkut", "--tier", "tiny", "--colors", "4",
             "--metrics-out", str(out)]
        ) == 0
        lines = out.read_text().strip().splitlines()
        assert lines[0] == "name,kind,field,value"
        assert any(l.startswith("pim.edges_routed,histogram,") for l in lines)

    def test_chrome_trace_has_both_tracks(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        assert main(
            ["dataset:orkut", "--tier", "tiny", "--colors", "4",
             "--chrome-trace", str(out)]
        ) == 0
        assert "chrome trace written" in capsys.readouterr().out
        events = json.loads(out.read_text())["traceEvents"]
        assert {e["pid"] for e in events} == {1, 2}

    def test_profile_prints_span_table(self, capsys):
        assert main(
            ["dataset:orkut", "--tier", "tiny", "--colors", "4", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "sim self" in out
        assert "triangle_count/launch" in out

    def test_report_describes_last_trial(self, tmp_path):
        """A fresh recorder per trial: the report is one run, not a sum."""
        import json

        out = tmp_path / "report.json"
        assert main(
            ["dataset:orkut", "--tier", "tiny", "--colors", "4",
             "--uniform-p", "0.5", "--trials", "3", "--metrics-out", str(out)]
        ) == 0
        data = json.loads(out.read_text())
        assert data["metrics"]["pipeline.runs"]["value"] == 1.0
        top = [s["path"] for s in data["spans"]["spans"]]
        assert top == ["setup", "sample_creation", "triangle_count"]


class TestFileSpecs:
    def test_edge_list_file(self, tmp_path, small_graph, capsys):
        path = tmp_path / "g.el"
        write_edge_list(small_graph, path)
        assert main([str(path), "--colors", "3"]) == 0
        truth = count_triangles(small_graph)
        assert f"triangles (exact): {truth}" in capsys.readouterr().out

    def test_mtx_file(self, tmp_path, capsys):
        path = tmp_path / "t.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 3\n1 2\n2 3\n1 3\n")
        assert main([str(path), "--colors", "2"]) == 0
        assert "triangles (exact): 1" in capsys.readouterr().out

    def test_npz_file(self, tmp_path, small_graph, capsys):
        from repro.graph.io import save_npz

        path = tmp_path / "g.npz"
        save_npz(small_graph, path)
        assert main([str(path), "--colors", "3"]) == 0
        assert "triangles (exact)" in capsys.readouterr().out
