"""PimSystem / DpuSet: allocation, kernel lifecycle, transfers, clock."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import (
    ConfigurationError,
    KernelLaunchError,
    PimAllocationError,
    TransferError,
)
from repro.pimsim.config import CostModel, DpuConfig, PimSystemConfig
from repro.pimsim.dpu import Dpu
from repro.pimsim.system import PimSystem
from repro.pimsim.wram import WramPlan


class CountdownKernel:
    """Toy kernel: sums an MRAM buffer and charges one instruction per element."""

    name = "countdown"

    def wram_plan(self, dpu: Dpu) -> WramPlan:
        return WramPlan(per_tasklet_buffers={"buf": 256})

    def run(self, dpu: Dpu) -> None:
        data = dpu.mram.load("input", count_read=False)
        dpu.charge_balanced(float(data.size))
        dpu.mram.store("output", np.array([data.sum()]), count_write=False)


@pytest.fixture
def system() -> PimSystem:
    return PimSystem(PimSystemConfig(num_ranks=2, dpus_per_rank=4))


class TestAllocation:
    def test_allocates_requested(self, system):
        dpus = system.allocate(5)
        assert len(dpus) == 5

    def test_rejects_zero(self, system):
        with pytest.raises(PimAllocationError):
            system.allocate(0)

    def test_rejects_too_many(self, system):
        with pytest.raises(PimAllocationError):
            system.allocate(9)

    def test_setup_time_grows_with_ranks(self, system):
        one_rank = system.allocate(4).clock.get("setup")
        two_ranks = system.allocate(8).clock.get("setup")
        assert two_ranks > one_rank

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            PimSystemConfig(num_ranks=0)

    def test_with_cost_override(self):
        cfg = PimSystemConfig().with_cost(scatter_bandwidth=1e9)
        assert cfg.cost.scatter_bandwidth == 1e9
        with pytest.raises(ConfigurationError):
            PimSystemConfig().with_cost(scatter_bandwidth=-1)


class TestKernelLifecycle:
    def test_launch_requires_kernel(self, system):
        dpus = system.allocate(2)
        with pytest.raises(KernelLaunchError):
            dpus.launch()

    def test_full_cycle(self, system):
        dpus = system.allocate(3)
        dpus.load_kernel(CountdownKernel())
        dpus.scatter("input", [np.arange(10), np.arange(20), np.arange(5)])
        dpus.launch()
        outs = dpus.gather("output")
        assert [int(o[0]) for o in outs] == [45, 190, 10]

    def test_launch_advances_clock_by_slowest(self, system):
        dpus = system.allocate(2)
        dpus.load_kernel(CountdownKernel())
        dpus.scatter("input", [np.arange(10), np.arange(100_000)])
        before = dpus.clock.get("triangle_count")
        dpus.launch()
        elapsed = dpus.clock.get("triangle_count") - before
        slowest = max(d.compute_seconds() for d in dpus.dpus)
        assert elapsed == pytest.approx(
            slowest + system.config.cost.launch_latency
        )

    def test_freed_set_unusable(self, system):
        dpus = system.allocate(2)
        dpus.free()
        with pytest.raises(KernelLaunchError):
            dpus.launch()

    def test_broadcast_stores_on_all(self, system):
        dpus = system.allocate(3)
        dpus.broadcast("table", np.arange(4))
        assert all(d.mram.has("table") for d in dpus.dpus)

    def test_scatter_requires_matching_count(self, system):
        dpus = system.allocate(2)
        with pytest.raises(TransferError):
            dpus.scatter("x", [np.arange(3)])

    def test_clock_phases_accumulate(self, system):
        dpus = system.allocate(2)
        dpus.load_kernel(CountdownKernel())
        dpus.scatter("input", [np.arange(4), np.arange(4)])
        dpus.launch()
        clock = dpus.clock
        assert clock.get("setup") > 0
        assert clock.get("sample_creation") > 0
        assert clock.get("triangle_count") > 0
        assert clock.total() == pytest.approx(
            clock.get("setup") + clock.get("sample_creation") + clock.get("triangle_count")
        )


class TestSimClock:
    def test_rejects_negative(self):
        from repro.pimsim.kernel import SimClock

        clock = SimClock()
        with pytest.raises(KernelLaunchError):
            clock.advance("x", -1.0)

    def test_merge_and_copy(self):
        from repro.pimsim.kernel import SimClock

        a = SimClock()
        a.advance("x", 1.0)
        b = a.copy()
        b.advance("y", 2.0)
        assert a.total() == 1.0
        a.merge(b)
        assert a.get("x") == 2.0 and a.get("y") == 2.0
