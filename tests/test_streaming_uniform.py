"""Uniform edge sampling (DOULION)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import RngFactory
from repro.graph.coo import COOGraph
from repro.graph.generators import erdos_renyi
from repro.graph.triangles import count_triangles
from repro.streaming.uniform import uniform_sample


class TestSampling:
    def test_p_one_is_identity(self, small_graph, rng):
        s = uniform_sample(small_graph, 1.0, rng)
        assert s.graph is not small_graph  # defensive view, not an alias
        assert np.array_equal(s.graph.src, small_graph.src)
        assert np.array_equal(s.graph.dst, small_graph.dst)
        assert s.graph.num_nodes == small_graph.num_nodes
        assert s.triangle_scale == 1.0

    def test_p_one_consumes_no_rng(self, small_graph):
        """The exact path must not perturb the generator state."""
        a, b = np.random.default_rng(3), np.random.default_rng(3)
        uniform_sample(small_graph, 1.0, a)
        assert a.random() == b.random()

    def test_p_one_sample_cannot_mutate_caller(self, small_graph, rng):
        """Regression: p=1 used to return the caller's own COOGraph, so any
        downstream in-place normalization corrupted the input graph."""
        s = uniform_sample(small_graph, 1.0, rng)
        assert not s.graph.src.flags.writeable
        assert not s.graph.dst.flags.writeable
        with pytest.raises(ValueError):
            s.graph.src[0] = 12345
        with pytest.raises(ValueError):
            s.graph.dst.sort()
        # And the caller's arrays stay writable and untouched.
        assert small_graph.src.flags.writeable
        before = small_graph.src.copy()
        assert np.array_equal(small_graph.src, before)

    def test_keeps_roughly_p_fraction(self, rng):
        g = erdos_renyi(500, 8000, rng)
        s = uniform_sample(g, 0.25, rng)
        assert 0.2 < s.edges_kept / g.num_edges < 0.3

    def test_sample_is_subset(self, small_graph, rng):
        s = uniform_sample(small_graph, 0.5, rng)
        keys = set(small_graph.edge_keys().tolist())
        assert set(s.graph.edge_keys().tolist()) <= keys

    def test_rejects_zero_p(self, small_graph, rng):
        with pytest.raises(ConfigurationError):
            uniform_sample(small_graph, 0.0, rng)

    def test_scale_is_p_cubed(self, small_graph, rng):
        s = uniform_sample(small_graph, 0.5, rng)
        assert s.triangle_scale == pytest.approx(0.125)

    def test_unbias(self, small_graph, rng):
        s = uniform_sample(small_graph, 0.5, rng)
        assert s.unbias(10) == pytest.approx(80.0)

    def test_preserves_num_nodes_and_names(self, small_graph, rng):
        s = uniform_sample(small_graph, 0.5, rng)
        assert s.graph.num_nodes == small_graph.num_nodes
        assert "p=0.5" in s.graph.name


class TestEstimatorStatistics:
    def test_unbiased_over_trials(self):
        """E[T_sampled / p^3] ~ T over many independent samplings."""
        rngs = RngFactory(77)
        g = erdos_renyi(120, 2500, rngs.stream("g")).canonicalize()
        truth = count_triangles(g)
        assert truth > 50
        estimates = []
        for t in range(300):
            s = uniform_sample(g, 0.5, rngs.stream("s", t))
            estimates.append(count_triangles(s.graph) / s.triangle_scale)
        assert np.mean(estimates) == pytest.approx(truth, rel=0.1)

    def test_variance_grows_as_p_shrinks(self):
        rngs = RngFactory(78)
        g = erdos_renyi(120, 2500, rngs.stream("g")).canonicalize()
        truth = count_triangles(g)

        def rel_errors(p: float) -> float:
            errs = []
            for t in range(60):
                s = uniform_sample(g, p, rngs.stream(f"p{p}", t))
                est = count_triangles(s.graph) / s.triangle_scale
                errs.append(abs(est - truth) / truth)
            return float(np.mean(errs))

        assert rel_errors(0.1) > rel_errors(0.5)
