"""``repro-top``: the pure renderer and the CLI against a live server."""

from __future__ import annotations

import asyncio
import threading
from contextlib import contextmanager

import pytest

from repro.observability.top import main as top_main, render_top
from repro.observability.watch import heartbeat_cell
from repro.service import ServiceClient, ServiceConfig, TriangleService


# ----------------------------------------------------------------- harness
class _ServiceThread:
    def __init__(self, **config) -> None:
        self.service = TriangleService(ServiceConfig(port=0, **config))
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(10), "service failed to start"

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.service.start())
        self._ready.set()
        self.loop.run_forever()

    @property
    def url(self) -> str:
        return f"127.0.0.1:{self.service.port}"

    def stop(self) -> None:
        asyncio.run_coroutine_threadsafe(self.service.stop(), self.loop).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@contextmanager
def running_service(**config):
    server = _ServiceThread(**config)
    try:
        yield server
    finally:
        server.stop()


def _hist(counts, total, total_sum):
    return {
        "kind": "histogram",
        "buckets": [0.001, 0.01, 0.1],
        "counts": counts + [0],  # trailing +inf overflow bucket
        "sum": total_sum,
        "count": total,
        "min": 0.0005,
        "max": 0.05,
    }


def _doc(**overrides) -> dict:
    doc = {
        "schema": "repro-service-metrics/1",
        "observability": True,
        "uptime_seconds": 42.0,
        "sessions_open": 1,
        "max_sessions": 8,
        "service": {
            "service.requests.insert": {"kind": "counter", "value": 5.0},
            "service.requests.count": {"kind": "counter", "value": 2.0},
            "service.rejections.backpressure": {"kind": "counter", "value": 3.0},
            "service.rejections.budget_exceeded": {"kind": "counter", "value": 0.0},
        },
        "latency": {},
        "sessions": {
            "alpha": {
                "metrics": {
                    "session.ops.insert": {"kind": "counter", "value": 5.0},
                    "session.op_latency_seconds.insert": _hist([4, 1, 0], 5, 0.01),
                    "session.op_latency_seconds.count": _hist([0, 2, 0], 2, 0.008),
                },
                "latency": {},
                "pending": 1,
                "resident_bytes": 2048,
            }
        },
    }
    doc.update(overrides)
    return doc


# ----------------------------------------------------------------- renderer
class TestRenderTop:
    def test_header_totals_and_nonzero_rejections_only(self):
        body = render_top(_doc())
        head = body.splitlines()[0]
        assert "up 42s" in head
        assert "sessions 1/8" in head
        assert "requests 7" in head
        assert "backpressure:3" in head
        assert "budget_exceeded" not in head  # zero counters stay quiet

    def test_session_row_merges_per_op_histograms(self):
        body = render_top(_doc())
        row = next(l for l in body.splitlines() if l.startswith("alpha"))
        assert " 1 " in row  # pending
        assert "2,048" in row
        assert " 5 " in row or row.split()[3] == "5"
        # Combined histogram: 7 samples, 4 in the first bucket -> p50 in
        # (0, 1ms], p99 in (1ms, 10ms]; both rendered in milliseconds.
        cols = row.split()
        p50, p99 = float(cols[4]), float(cols[5])
        assert 0.0 < p50 <= 1.0
        assert p50 < p99 <= 10.0

    def test_heartbeat_cell_from_stream(self):
        streams = {
            "alpha": [
                {"event": "run_start", "run_id": "r", "ts": 10.0, "graph": "g"},
                {
                    "event": "heartbeat",
                    "ts": 11.0,
                    "batch": 2,
                    "batches_total": 10,
                    "eta_sim_seconds": 0.004,
                },
            ]
        }
        body = render_top(_doc(), streams, now=14.0)
        row = next(l for l in body.splitlines() if l.startswith("alpha"))
        assert "batch 3/10" in row
        assert "ETA 4.00ms" in row
        assert "(3s ago)" in row

    def test_disabled_plane_and_empty_sessions_notes(self):
        body = render_top(_doc(observability=False, sessions={}))
        assert "observability plane disabled" in body
        assert "(no open sessions)" in body


class TestHeartbeatCell:
    def test_no_heartbeat_is_a_dash(self):
        assert heartbeat_cell({"heartbeat": None}) == "-"

    def test_age_suffix_requires_now(self):
        view = {
            "heartbeat": {"batch": 0, "batches_total": 4, "eta_sim_seconds": 0.001},
            "last_ts": 5.0,
        }
        assert heartbeat_cell(view) == "batch 1/4 ETA 1.00ms"
        assert heartbeat_cell(view, now=7.5).endswith("(2s ago)")


# ---------------------------------------------------------------------- CLI
class TestTopCli:
    def test_once_against_live_server(self, capsys, triangle_graph):
        with running_service() as server:
            with ServiceClient(server.url) as client:
                client.open_session("live", num_nodes=triangle_graph.num_nodes)
                client.insert(
                    "live",
                    triangle_graph.src.tolist(),
                    triangle_graph.dst.tolist(),
                )
                assert top_main([server.url, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro-serve" in out
        assert "live" in out
        assert "sessions 1/" in out

    def test_once_with_event_dir_shows_heartbeats(
        self, tmp_path, capsys, triangle_graph
    ):
        with running_service(event_dir=str(tmp_path)) as server:
            with ServiceClient(server.url) as client:
                client.open_session("hb", num_nodes=triangle_graph.num_nodes)
                client.insert(
                    "hb",
                    triangle_graph.src.tolist(),
                    triangle_graph.dst.tolist(),
                )
                assert top_main(
                    [server.url, "--once", "--event-dir", str(tmp_path)]
                ) == 0
        out = capsys.readouterr().out
        row = next(l for l in out.splitlines() if l.startswith("hb"))
        assert "batch 1/1" in row

    def test_unreachable_server_exits_nonzero(self, capsys):
        assert top_main(["127.0.0.1:1", "--once", "--timeout", "0.5"]) == 1
        assert "cannot reach" in capsys.readouterr().err
