"""COO container: construction, preprocessing, views, dynamic splitting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.common.errors import GraphFormatError
from repro.graph.coo import COOGraph

from conftest import edge_list_strategy


class TestConstruction:
    def test_from_edges(self):
        g = COOGraph.from_edges([(0, 1), (1, 2)])
        assert g.num_edges == 2
        assert g.num_nodes == 3

    def test_from_empty(self):
        g = COOGraph.from_edges([], num_nodes=5)
        assert g.num_edges == 0
        assert g.num_nodes == 5

    def test_infers_num_nodes(self):
        g = COOGraph.from_edges([(0, 9)])
        assert g.num_nodes == 10

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(GraphFormatError):
            COOGraph(src=np.array([0, 1]), dst=np.array([1]), num_nodes=2)

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphFormatError):
            COOGraph.from_edges([(-1, 0)], num_nodes=2)

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(GraphFormatError):
            COOGraph.from_edges([(0, 5)], num_nodes=3)

    def test_rejects_bad_shape(self):
        with pytest.raises(GraphFormatError):
            COOGraph.from_edges(np.zeros((3, 3), dtype=np.int64))

    def test_len_and_repr(self):
        g = COOGraph.from_edges([(0, 1)], name="tiny")
        assert len(g) == 1
        assert "tiny" in repr(g)


class TestCanonicalize:
    def test_removes_self_loops(self):
        g = COOGraph.from_edges([(0, 0), (0, 1), (2, 2)], num_nodes=3).canonicalize()
        assert g.num_edges == 1

    def test_removes_directed_duplicates(self):
        g = COOGraph.from_edges([(0, 1), (1, 0), (0, 1)], num_nodes=2).canonicalize()
        assert g.num_edges == 1

    def test_orients_ascending(self):
        g = COOGraph.from_edges([(5, 2), (9, 1)], num_nodes=10).canonicalize()
        assert np.all(g.src < g.dst)

    def test_idempotent(self):
        g = COOGraph.from_edges([(0, 1), (1, 0), (2, 2), (1, 2)], num_nodes=3)
        once = g.canonicalize()
        twice = once.canonicalize()
        np.testing.assert_array_equal(once.edge_keys(), twice.edge_keys())

    def test_is_canonical_detects(self):
        messy = COOGraph.from_edges([(1, 0)], num_nodes=2)
        assert not messy.is_canonical()
        assert messy.canonicalize().is_canonical()

    def test_empty_graph_is_canonical(self):
        assert COOGraph.from_edges([], num_nodes=3).is_canonical()

    @settings(max_examples=40, deadline=None)
    @given(g=edge_list_strategy())
    def test_canonical_invariants_hold(self, g):
        c = g.canonicalize()
        assert c.is_canonical()
        # No self loops, all oriented, no duplicates.
        assert np.all(c.src < c.dst)
        assert np.unique(c.edge_keys()).size == c.num_edges


class TestShuffle:
    def test_preserves_edge_set(self, small_graph, rng):
        shuffled = small_graph.shuffle(rng)
        assert sorted(shuffled.edge_keys().tolist()) == sorted(
            small_graph.edge_keys().tolist()
        )

    def test_changes_order(self, small_graph, rng):
        shuffled = small_graph.shuffle(rng)
        assert not np.array_equal(shuffled.src, small_graph.src)


class TestViewsAndStats:
    def test_degrees_triangle(self, triangle_graph):
        deg = triangle_graph.degrees()
        assert deg.tolist() == [2, 2, 3, 1]

    def test_edge_keys_unique_for_canonical(self, small_graph):
        keys = small_graph.edge_keys()
        assert np.unique(keys).size == keys.size

    def test_edges_matrix_shape(self, triangle_graph):
        assert triangle_graph.edges().shape == (4, 2)

    def test_nbytes_positive(self, triangle_graph):
        assert triangle_graph.nbytes() == 4 * 2 * 8

    def test_iter_edges(self, triangle_graph):
        assert list(triangle_graph.iter_edges())[0] == (0, 1)


class TestDynamicOps:
    def test_concat_appends(self, triangle_graph):
        extra = COOGraph.from_edges([(1, 3)], num_nodes=4)
        merged = triangle_graph.concat(extra)
        assert merged.num_edges == 5

    def test_concat_takes_max_nodes(self):
        a = COOGraph.from_edges([(0, 1)], num_nodes=2)
        b = COOGraph.from_edges([(5, 6)], num_nodes=7)
        assert a.concat(b).num_nodes == 7

    def test_split_batches_cover_everything(self, small_graph):
        batches = small_graph.split_batches(7)
        assert sum(b.num_edges for b in batches) == small_graph.num_edges
        rebuilt = batches[0]
        for b in batches[1:]:
            rebuilt = rebuilt.concat(b)
        np.testing.assert_array_equal(rebuilt.src, small_graph.src)

    def test_split_batches_roughly_even(self, small_graph):
        batches = small_graph.split_batches(10)
        sizes = [b.num_edges for b in batches]
        assert max(sizes) - min(sizes) <= 1

    def test_split_rejects_zero(self, small_graph):
        with pytest.raises(GraphFormatError):
            small_graph.split_batches(0)

    def test_slice(self, small_graph):
        part = small_graph.slice(5, 15)
        assert part.num_edges == 10
        np.testing.assert_array_equal(part.src, small_graph.src[5:15])
