"""Experiment harness: every artifact regenerates at the tiny tier with the
paper's qualitative shape."""

from __future__ import annotations

import json

import pytest

from repro.experiments import EXPERIMENTS, Table, experiment_ids, run_experiment


class TestTable:
    def test_add_row_checks_arity(self):
        t = Table(title="t", headers=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_column_access(self):
        t = Table(title="t", headers=["a", "b"])
        t.add_row(1, 2)
        t.add_row(3, 4)
        assert t.column("b") == [2, 4]

    def test_render_contains_everything(self):
        t = Table(title="My Table", headers=["x"], notes="a note")
        t.add_row(42)
        text = t.render()
        assert "My Table" in text and "42" in text and "a note" in text

    def test_to_dict_json_serializable(self):
        t = Table(title="t", headers=["a"])
        t.add_row(1.5)
        json.dumps(t.to_dict())


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        ids = set(experiment_ids())
        for required in ("tab1", "tab2", "tab3", "tab4", "fig3", "fig4", "fig5", "fig6", "fig7"):
            assert required in ids

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_descriptions_non_empty(self):
        for exp in EXPERIMENTS.values():
            assert exp.description and exp.paper_artifact


@pytest.mark.parametrize("exp_id", experiment_ids())
def test_experiment_runs_at_tiny_tier(exp_id):
    table = run_experiment(exp_id, tier="tiny", seed=0)
    assert isinstance(table, Table)
    assert table.rows, f"{exp_id} produced no rows"


class TestShapes:
    """The qualitative claims each artifact must reproduce."""

    def test_tab1_has_all_graphs(self):
        table = run_experiment("tab1", tier="tiny")
        assert len(table.rows) == 7

    def test_tab2_high_degree_separation(self):
        table = run_experiment("tab2", tier="tiny")
        degs = dict(zip(table.column("Graph"), table.column("Max degree")))
        assert degs["wikipedia"] > 5 * degs["orkut"]

    def test_fig3_hub_graph_lowest_throughput(self):
        table = run_experiment("fig3", tier="tiny")
        tp = dict(zip(table.column("Graph"), table.column("Edges/ms")))
        assert tp["wikipedia"] == min(tp.values())
        assert all(table.column("Exact?"))

    def test_fig4_larger_graphs_scale(self):
        table = run_experiment("fig4", tier="tiny")
        rows = [r for r in table.rows if r[0] == "kronecker23"]
        speedups = [r[4] for r in rows]
        assert speedups[-1] > 1.0  # more cores help the big graph
        assert all(table.column("Exact?"))

    def test_fig5_mg_helps_hub_graph(self):
        table = run_experiment("fig5", tier="tiny")
        wiki = [r for r in table.rows if r[0] == "wikipedia"]
        base_ms = wiki[0][3]
        best_ms = min(r[3] for r in wiki[1:])
        assert best_ms < 0.5 * base_ms

    def test_tab3_error_grows_as_p_shrinks(self):
        table = run_experiment("tab3", tier="tiny")
        for row in table.rows:
            if row[0] in ("kronecker23", "humanjung"):
                errs = [float(c.rstrip("%")) for c in row[1:5]]
                assert errs[0] < errs[-1]

    def test_tab4_errors_bounded_at_half_capacity(self):
        table = run_experiment("tab4", tier="tiny")
        for row in table.rows:
            if row[0] == "humanjung":
                assert float(row[1].rstrip("%")) < 5.0

    def test_fig6_all_exact_and_pim_worst_on_wikipedia(self):
        """At the tiny tier the fixed overheads mask the GPU-vs-CPU ordering
        (that shape is checked at the bench tier in EXPERIMENTS.md); what must
        already hold is exactness everywhere and wikipedia being the PIM
        implementation's worst case relative to the CPU (paper Sec. 4.6)."""
        table = run_experiment("fig6", tier="tiny")
        rows = {r[0]: r for r in table.rows}
        assert all(table.column("Exact?"))
        pim_speedups = {name: r[4] for name, r in rows.items()}
        assert pim_speedups["wikipedia"] <= min(
            v for k, v in pim_speedups.items() if k != "wikipedia"
        ) * 2.0
        # GPU within striking distance of CPU even at toy scale (its fixed
        # invocation overhead dominates graphs this small).
        assert rows["kronecker24"][5] > 0.3

    def test_fig7_cpu_grows_fastest(self):
        table = run_experiment("fig7", tier="tiny")
        cpu = table.column("CPU cum ms")
        # CPU cumulative time accelerates (superlinear growth).
        first_half = cpu[4] - cpu[0]
        second_half = cpu[9] - cpu[5]
        assert second_half > first_half

    def test_abl_coloring_parallelism_wins(self):
        table = run_experiment("abl_coloring", tier="tiny")
        max_dpu_ms = table.column("Max-DPU ms")
        assert max_dpu_ms[-1] < max_dpu_ms[0]


class TestRunnerCli:
    def test_list(self, capsys):
        from repro.experiments.runner import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out

    def test_single_experiment_text(self, capsys, tmp_path):
        from repro.experiments.runner import main

        out_file = tmp_path / "res.txt"
        assert main(["tab1", "--tier", "tiny", "--out", str(out_file)]) == 0
        assert "Table 1" in out_file.read_text()

    def test_json_output(self, capsys):
        from repro.experiments.runner import main

        assert main(["tab2", "--tier", "tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["headers"][0] == "Graph"
