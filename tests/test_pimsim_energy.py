"""Energy ledger (linear PrIM-style model)."""

from __future__ import annotations

import pytest

from repro.pimsim.config import CostModel, DpuConfig
from repro.pimsim.dpu import Dpu
from repro.pimsim.energy import EnergyModel, EnergyReport


@pytest.fixture
def dpu() -> Dpu:
    d = Dpu(dpu_id=0, config=DpuConfig(), cost=CostModel())
    d.charge_instructions(0, 1_000_000)
    d.charge_mram_read(0, 1 << 20)
    return d


class TestEnergyModel:
    def test_dynamic_energy_positive(self, dpu):
        assert EnergyModel().dpu_energy(dpu) > 0

    def test_linear_in_instructions(self):
        model = EnergyModel(dpu_static_w=0.0)
        a = Dpu(dpu_id=0, config=DpuConfig(), cost=CostModel())
        a.charge_instructions(0, 1000)
        b = Dpu(dpu_id=1, config=DpuConfig(), cost=CostModel())
        b.charge_instructions(0, 2000)
        # Static power excluded; remaining term is linear.
        ea = model.dpu_energy(a, active_seconds=0.0)
        eb = model.dpu_energy(b, active_seconds=0.0)
        assert eb == pytest.approx(2 * ea)

    def test_static_term_uses_active_seconds(self, dpu):
        model = EnergyModel()
        idle = model.dpu_energy(dpu, active_seconds=0.0)
        busy = model.dpu_energy(dpu, active_seconds=1.0)
        assert busy - idle == pytest.approx(model.dpu_static_w)

    def test_transfer_energy(self):
        model = EnergyModel()
        assert model.transfer_energy(1000) == pytest.approx(1000 * model.transfer_byte_j)

    def test_report_total(self):
        report = EnergyReport(dpu_dynamic_j=1.0, transfer_j=0.5)
        assert report.total_j == 1.5
