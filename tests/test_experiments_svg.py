"""SVG figure output: well-formedness, geometry sanity, palette discipline."""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET

import pytest

from repro.experiments import run_experiment
from repro.experiments.svg import (
    PALETTE,
    bar_chart_svg,
    figure_spec_for,
    line_chart_svg,
    render_figure,
)
from repro.experiments.tables import Table

NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


@pytest.fixture
def bar_table() -> Table:
    t = Table(title="Demo bars", headers=["Graph", "value"])
    for name, v in [("a", 10.0), ("b", 250.0), ("c", 3.0)]:
        t.add_row(name, v)
    return t


@pytest.fixture
def line_table() -> Table:
    t = Table(title="Demo lines", headers=["Round", "cpu", "pim"])
    for x in range(1, 6):
        t.add_row(x, float(x * x), float(2 * x))
    return t


class TestBarChart:
    def test_well_formed(self, bar_table):
        root = parse(bar_chart_svg(bar_table, "value"))
        assert root.tag == f"{NS}svg"

    def test_one_data_rect_per_row(self, bar_table):
        root = parse(bar_chart_svg(bar_table, "value"))
        rects = [
            r for r in root.iter(f"{NS}rect") if r.get("fill") in PALETTE
        ]
        assert len(rects) == 3

    def test_bars_inside_canvas(self, bar_table):
        svg = bar_chart_svg(bar_table, "value")
        root = parse(svg)
        width = float(root.get("width"))
        height = float(root.get("height"))
        for r in root.iter(f"{NS}rect"):
            x, y = float(r.get("x", 0)), float(r.get("y", 0))
            assert -1 <= x <= width
            assert -1 <= y <= height

    def test_tallest_value_longest_bar(self, bar_table):
        root = parse(bar_chart_svg(bar_table, "value"))
        data = [
            (float(r.get("height")), float(r.get("y")))
            for r in root.iter(f"{NS}rect")
            if r.get("fill") in PALETTE
        ]
        heights = [h for h, _ in data]
        assert max(heights) == heights[1]  # value 250 is row 2

    def test_log_scale_subtitle(self, bar_table):
        svg = bar_chart_svg(bar_table, "value", log_scale=True)
        assert "log scale" in svg

    def test_single_series_has_no_legend_circles(self, bar_table):
        root = parse(bar_chart_svg(bar_table, "value"))
        assert not list(root.iter(f"{NS}circle"))

    def test_every_bar_direct_labeled(self, bar_table):
        svg = bar_chart_svg(bar_table, "value")
        assert "250" in svg and "10" in svg


class TestLineChart:
    def test_multi_column_series(self, line_table):
        root = parse(line_chart_svg(line_table, "Round", y_columns=["cpu", "pim"]))
        lines = list(root.iter(f"{NS}polyline"))
        assert len(lines) == 2
        assert lines[0].get("stroke") == PALETTE[0]
        assert lines[1].get("stroke") == PALETTE[1]

    def test_legend_present_for_two_series(self, line_table):
        svg = line_chart_svg(line_table, "Round", y_columns=["cpu", "pim"])
        root = parse(svg)
        # Legend swatches + data markers are circles; >= 2 swatches exist.
        circles = list(root.iter(f"{NS}circle"))
        assert len(circles) >= 2 + 2 * 5

    def test_grouped_series_mode(self):
        t = Table(title="g", headers=["Graph", "Colors", "ms"])
        for g in ("x", "y"):
            for c in (2, 4):
                t.add_row(g, c, float(c))
        root = parse(
            line_chart_svg(t, "Colors", series_column="Graph", y_column="ms")
        )
        assert len(list(root.iter(f"{NS}polyline"))) == 2

    def test_requires_series_spec(self, line_table):
        with pytest.raises(ValueError):
            line_chart_svg(line_table, "Round")

    def test_too_many_series_rejected(self):
        t = Table(title="t", headers=["x"] + [f"s{i}" for i in range(9)])
        t.add_row(*([1.0] * 10))
        t.add_row(*([2.0] * 10))
        with pytest.raises(ValueError):
            line_chart_svg(t, "x", y_columns=[f"s{i}" for i in range(9)])

    def test_points_inside_canvas(self, line_table):
        root = parse(line_chart_svg(line_table, "Round", y_columns=["cpu", "pim"]))
        width = float(root.get("width"))
        for poly in root.iter(f"{NS}polyline"):
            for pair in poly.get("points").split():
                x, y = (float(v) for v in pair.split(","))
                assert 0 <= x <= width
                assert 0 <= y <= float(root.get("height"))


class TestRenderFigure:
    @pytest.mark.parametrize("exp_id", ["fig3", "fig4", "fig7"])
    def test_paper_figures_render(self, exp_id):
        table = run_experiment(exp_id, tier="tiny")
        svg = render_figure(exp_id, table)
        assert svg is not None
        parse(svg)  # well-formed

    def test_unspecified_experiment_returns_none(self):
        table = run_experiment("tab3", tier="tiny")
        assert render_figure("tab3", table) is None

    def test_spec_lookup(self):
        assert figure_spec_for("fig7")[0] == "line"
        assert figure_spec_for("nope") is None

    def test_runner_svg_flag(self, tmp_path, capsys):
        from repro.experiments.runner import main

        assert main(["fig3", "--tier", "tiny", "--svg", str(tmp_path)]) == 0
        out_file = tmp_path / "fig3.svg"
        assert out_file.exists()
        parse(out_file.read_text())


class TestNoLabelCollisions:
    def test_bar_labels_spaced(self):
        """Seven dataset bars at default width leave >= 60px per label slot."""
        table = run_experiment("tab2", tier="tiny")
        svg = bar_chart_svg(table, "Max degree", log_scale=True)
        root = parse(svg)
        xs = sorted(
            float(t.get("x"))
            for t in root.iter(f"{NS}text")
            if t.get("text-anchor") == "middle" and not t.text[0].isdigit()
        )
        gaps = [b - a for a, b in zip(xs, xs[1:])]
        assert min(gaps) >= 60
