"""Edge partition invariants — the heart of the communication-free scheme."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.partition import ColoringPartitioner
from repro.common.rng import RngFactory
from repro.graph.coo import COOGraph
from repro.graph.generators import erdos_renyi
from repro.graph.triangles import count_triangles

from conftest import graph_strategy


def make_partitioner(c: int, seed: int = 0) -> ColoringPartitioner:
    return ColoringPartitioner(c, RngFactory(seed).stream("c"))


class TestAssignment:
    def test_total_routed_is_c_times_m(self, small_graph):
        for c in (1, 2, 5):
            part = make_partitioner(c).assign(small_graph)
            assert part.total_routed == c * small_graph.num_edges

    def test_no_duplicate_edges_within_dpu(self, small_graph):
        part = make_partitioner(4).assign(small_graph)
        n = small_graph.num_nodes
        for src, dst in part.per_dpu:
            keys = np.minimum(src, dst) * n + np.maximum(src, dst)
            assert np.unique(keys).size == keys.size

    def test_empty_graph(self):
        g = COOGraph.from_edges([], num_nodes=4)
        part = make_partitioner(3).assign(g)
        assert part.total_routed == 0
        assert len(part.per_dpu) == 10

    def test_counts_column_matches_arrays(self, small_graph):
        part = make_partitioner(3).assign(small_graph)
        for count, (src, _) in zip(part.counts.tolist(), part.per_dpu):
            assert count == src.size

    def test_edges_land_on_compatible_dpus_only(self, small_graph):
        p = make_partitioner(4)
        part = p.assign(small_graph)
        cu_all = p.node_colors(np.arange(small_graph.num_nodes))
        for dpu, (src, dst) in enumerate(part.per_dpu):
            triplet = list(p.table.triplet_of(dpu))
            for a, b in zip(cu_all[src].tolist(), cu_all[dst].tolist()):
                t = triplet.copy()
                t.remove(a)
                assert b in t  # pair {a, b} is a sub-multiset of the triplet

    def test_load_classes_follow_n_3n_6n(self):
        """Sec. 3.1: expected loads are N (mono), 3N (two-color), 6N (three-color)."""
        rngs = RngFactory(5)
        g = erdos_renyi(3000, 60_000, rngs.stream("g")).canonicalize()
        p = make_partitioner(4, seed=2)
        part = p.assign(g)
        kind = p.table.kind
        mean1 = part.counts[kind == 1].mean()
        mean2 = part.counts[kind == 2].mean()
        mean3 = part.counts[kind == 3].mean()
        assert mean2 / mean1 == pytest.approx(3.0, rel=0.2)
        assert mean3 / mean1 == pytest.approx(6.0, rel=0.2)

    def test_expected_max_edges_formula(self, small_graph):
        p = make_partitioner(4)
        assert p.expected_max_edges_per_dpu(small_graph.num_edges) == pytest.approx(
            6 * small_graph.num_edges / 16
        )


class TestCountingInvariant:
    """Summed per-core counts + mono correction == exact triangle count."""

    @pytest.mark.parametrize("c", [1, 2, 3, 5, 8])
    def test_er_graphs(self, c, rngs):
        g = erdos_renyi(60, 300, rngs.stream("g", c)).canonicalize()
        self._check(g, c, seed=c)

    @settings(max_examples=25, deadline=None)
    @given(
        g=graph_strategy(max_nodes=20, max_edges=70),
        c=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=10),
    )
    def test_property(self, g, c, seed):
        self._check(g, c, seed)

    @staticmethod
    def _check(g: COOGraph, c: int, seed: int) -> None:
        truth = count_triangles(g)
        p = make_partitioner(c, seed=seed)
        part = p.assign(g)
        counts = np.array(
            [
                count_triangles(COOGraph(src.copy(), dst.copy(), g.num_nodes))
                for src, dst in part.per_dpu
            ],
            dtype=np.float64,
        )
        mono = p.mono_mask()
        total = counts.sum() - (c - 1) * counts[mono].sum()
        assert total == truth

    def test_mono_dpus_count_only_their_color(self, rngs):
        """A single-color core's subgraph is monochromatic by construction."""
        g = erdos_renyi(50, 260, rngs.stream("m")).canonicalize()
        p = make_partitioner(3, seed=9)
        part = p.assign(g)
        for dpu in np.nonzero(p.mono_mask())[0]:
            color = p.table.triplet_of(int(dpu))[0]
            src, dst = part.per_dpu[dpu]
            assert np.all(p.node_colors(src) == color)
            assert np.all(p.node_colors(dst) == color)


class TestDeterminism:
    def test_same_seed_same_assignment(self, small_graph):
        a = make_partitioner(4, seed=1).assign(small_graph)
        b = make_partitioner(4, seed=1).assign(small_graph)
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_different_seed_different_coloring(self, small_graph):
        a = make_partitioner(4, seed=1).assign(small_graph)
        b = make_partitioner(4, seed=2).assign(small_graph)
        assert not np.array_equal(a.counts, b.counts)
