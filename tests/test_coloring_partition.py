"""Edge partition invariants — the heart of the communication-free scheme."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.partition import (
    ColoringPartitioner,
    DegreePartitioner,
    make_partitioner as strategy_partitioner,
)
from repro.common.errors import ConfigurationError
from repro.common.rng import RngFactory
from repro.graph.coo import COOGraph
from repro.graph.generators import erdos_renyi, hub_graph
from repro.graph.triangles import count_triangles

from conftest import graph_strategy


def make_partitioner(c: int, seed: int = 0) -> ColoringPartitioner:
    return ColoringPartitioner(c, RngFactory(seed).stream("c"))


def make_degree_partitioner(c: int, seed: int = 0) -> DegreePartitioner:
    return DegreePartitioner(c, RngFactory(seed).stream("c"))


class TestAssignment:
    def test_total_routed_is_c_times_m(self, small_graph):
        for c in (1, 2, 5):
            part = make_partitioner(c).assign(small_graph)
            assert part.total_routed == c * small_graph.num_edges

    def test_no_duplicate_edges_within_dpu(self, small_graph):
        part = make_partitioner(4).assign(small_graph)
        n = small_graph.num_nodes
        for src, dst in part.per_dpu:
            keys = np.minimum(src, dst) * n + np.maximum(src, dst)
            assert np.unique(keys).size == keys.size

    def test_empty_graph(self):
        g = COOGraph.from_edges([], num_nodes=4)
        part = make_partitioner(3).assign(g)
        assert part.total_routed == 0
        assert len(part.per_dpu) == 10

    def test_counts_column_matches_arrays(self, small_graph):
        part = make_partitioner(3).assign(small_graph)
        for count, (src, _) in zip(part.counts.tolist(), part.per_dpu):
            assert count == src.size

    def test_edges_land_on_compatible_dpus_only(self, small_graph):
        p = make_partitioner(4)
        part = p.assign(small_graph)
        cu_all = p.node_colors(np.arange(small_graph.num_nodes))
        for dpu, (src, dst) in enumerate(part.per_dpu):
            triplet = list(p.table.triplet_of(dpu))
            for a, b in zip(cu_all[src].tolist(), cu_all[dst].tolist()):
                t = triplet.copy()
                t.remove(a)
                assert b in t  # pair {a, b} is a sub-multiset of the triplet

    def test_load_classes_follow_n_3n_6n(self):
        """Sec. 3.1: expected loads are N (mono), 3N (two-color), 6N (three-color)."""
        rngs = RngFactory(5)
        g = erdos_renyi(3000, 60_000, rngs.stream("g")).canonicalize()
        p = make_partitioner(4, seed=2)
        part = p.assign(g)
        kind = p.table.kind
        mean1 = part.counts[kind == 1].mean()
        mean2 = part.counts[kind == 2].mean()
        mean3 = part.counts[kind == 3].mean()
        assert mean2 / mean1 == pytest.approx(3.0, rel=0.2)
        assert mean3 / mean1 == pytest.approx(6.0, rel=0.2)

    def test_expected_max_edges_formula(self, small_graph):
        p = make_partitioner(4)
        assert p.expected_max_edges_per_dpu(small_graph.num_edges) == pytest.approx(
            6 * small_graph.num_edges / 16
        )


class TestCountingInvariant:
    """Summed per-core counts + mono correction == exact triangle count."""

    @pytest.mark.parametrize("c", [1, 2, 3, 5, 8])
    def test_er_graphs(self, c, rngs):
        g = erdos_renyi(60, 300, rngs.stream("g", c)).canonicalize()
        self._check(g, c, seed=c)

    @settings(max_examples=25, deadline=None)
    @given(
        g=graph_strategy(max_nodes=20, max_edges=70),
        c=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=10),
    )
    def test_property(self, g, c, seed):
        self._check(g, c, seed)

    @staticmethod
    def _check(g: COOGraph, c: int, seed: int) -> None:
        truth = count_triangles(g)
        p = make_partitioner(c, seed=seed)
        part = p.assign(g)
        counts = np.array(
            [
                count_triangles(COOGraph(src.copy(), dst.copy(), g.num_nodes))
                for src, dst in part.per_dpu
            ],
            dtype=np.float64,
        )
        mono = p.mono_mask()
        total = counts.sum() - (c - 1) * counts[mono].sum()
        assert total == truth

    def test_mono_dpus_count_only_their_color(self, rngs):
        """A single-color core's subgraph is monochromatic by construction."""
        g = erdos_renyi(50, 260, rngs.stream("m")).canonicalize()
        p = make_partitioner(3, seed=9)
        part = p.assign(g)
        for dpu in np.nonzero(p.mono_mask())[0]:
            color = p.table.triplet_of(int(dpu))[0]
            src, dst = part.per_dpu[dpu]
            assert np.all(p.node_colors(src) == color)
            assert np.all(p.node_colors(dst) == color)


class TestDeterminism:
    def test_same_seed_same_assignment(self, small_graph):
        a = make_partitioner(4, seed=1).assign(small_graph)
        b = make_partitioner(4, seed=1).assign(small_graph)
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_different_seed_different_coloring(self, small_graph):
        a = make_partitioner(4, seed=1).assign(small_graph)
        b = make_partitioner(4, seed=2).assign(small_graph)
        assert not np.array_equal(a.counts, b.counts)


class TestDegreePartitioner:
    """Degree-aware coloring: still a partition, so still exact."""

    def _hub(self, seed: int = 0) -> COOGraph:
        rng = np.random.default_rng(seed)
        return hub_graph(200, 400, 3, 120, rng).canonicalize()

    def test_counting_invariant_on_hub_graph(self):
        g = self._hub()
        truth = count_triangles(g)
        for c in (2, 3, 4):
            p = make_degree_partitioner(c, seed=c)
            part = p.assign(g)
            counts = np.array(
                [
                    count_triangles(COOGraph(src.copy(), dst.copy(), g.num_nodes))
                    for src, dst in part.per_dpu
                ],
                dtype=np.float64,
            )
            total = counts.sum() - (c - 1) * counts[p.mono_mask()].sum()
            assert total == truth

    def test_node_colors_is_a_partition(self):
        """Same node must get the same color no matter the query context."""
        g = self._hub()
        p = make_degree_partitioner(4)
        p.fit(g)
        nodes = np.arange(g.num_nodes)
        whole = p.node_colors(nodes)
        # query one at a time, reversed, and interleaved with other IDs
        singles = np.array([int(p.node_colors(np.array([v]))[0]) for v in nodes])
        np.testing.assert_array_equal(whole, singles)
        np.testing.assert_array_equal(p.node_colors(nodes[::-1]), whole[::-1])

    def test_unfitted_raises(self):
        p = make_degree_partitioner(3)
        assert not p.fitted
        with pytest.raises(ConfigurationError):
            p.node_colors(np.array([0, 1]))

    def test_assign_autofits(self):
        g = self._hub()
        p = make_degree_partitioner(3)
        part = p.assign(g)
        assert p.fitted
        assert part.total_routed == 3 * g.num_edges

    def test_deterministic_fit(self):
        g = self._hub()
        a = make_degree_partitioner(4, seed=7).assign(g)
        b = make_degree_partitioner(4, seed=7).assign(g)
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_hot_nodes_are_highest_degree(self):
        g = self._hub()
        p = make_degree_partitioner(4)
        p.fit(g)
        assert p.num_hot_nodes >= 3  # the three planted hubs qualify
        deg = g.degrees()
        hot = p._hot_nodes
        assert deg[hot].min() > deg.mean()

    def test_reduces_max_triplet_load_vs_hash(self):
        """The whole point: hub graphs route more evenly than under hash."""
        g = self._hub(seed=3)
        for seed in (0, 1, 2):
            hash_counts = make_partitioner(4, seed=seed).assign(g).counts
            deg_counts = make_degree_partitioner(4, seed=seed).assign(g).counts
            assert deg_counts.max() <= hash_counts.max()

    def test_expected_max_uses_fitted_mass(self):
        g = self._hub()
        p = make_degree_partitioner(4)
        uniform = ColoringPartitioner(4, RngFactory(0).stream("c"))
        # unfitted: falls back to the uniform formula
        assert p.expected_max_edges_per_dpu(g.num_edges) == pytest.approx(
            uniform.expected_max_edges_per_dpu(g.num_edges)
        )
        p.fit(g)
        est = p.expected_max_edges_per_dpu(g.num_edges)
        # fitted estimate reflects the actual (non-uniform) color masses: on
        # a skewed graph it rises above the uniform 6m/C^3 formula, which
        # under-estimates the realised max load here
        actual = p.assign(g).counts.max()
        assert est > uniform.expected_max_edges_per_dpu(g.num_edges)
        assert actual > uniform.expected_max_edges_per_dpu(g.num_edges)

    def test_strategy_factory(self):
        rng = RngFactory(0).stream("c")
        assert strategy_partitioner("hash", 3, rng).strategy == "hash"
        assert strategy_partitioner("degree", 3, rng).strategy == "degree"
        with pytest.raises(ConfigurationError):
            strategy_partitioner("auto", 3, rng)  # resolved before this layer
        with pytest.raises(ConfigurationError):
            strategy_partitioner("nope", 3, rng)
