"""Zero-pickle process engine: shared-memory transport, lifecycle, parity.

Three contracts pinned here:

* **No leaks** — every segment the parent creates is unlinked by the time the
  map returns, the run's ``free()`` completes, or a worker crashes; nothing
  is left in ``/dev/shm``.
* **Bit-identical results** — the shm transport and the plain pickling path
  (``REPRO_SHM=0``) produce identical counts, clocks and charges: a worker
  sees equal arrays either way.
* **Header-sized control messages** — with the transport on, the pickled
  bytes per submitted chunk collapse to the object skeleton (measured via the
  serialization-counting hook), instead of scaling with the edge sample.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.core.api import PimTriangleCounter
from repro.graph.generators import erdos_renyi
from repro.pimsim.executor import (
    ProcessExecutor,
    set_payload_pickle_hook,
)
from repro.pimsim.shm import (
    SHM_MIN_ARRAY_BYTES,
    decode_chunk,
    encode_chunk,
    shm_available,
)

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable in this sandbox"
)


def _shm_entries() -> set[str]:
    return set(glob.glob("/dev/shm/psm_*"))


@pytest.fixture
def graph():
    return erdos_renyi(500, 3000, np.random.default_rng(13)).canonicalize()


# Module-level so it pickles by reference into pool workers.
def _boom(dpu, payload):
    raise RuntimeError("simulated worker failure")


def _identity(dpu, payload):
    return payload


class TestCodec:
    def test_roundtrip_nested_structure(self):
        rng = np.random.default_rng(0)
        payload = (
            [rng.integers(0, 100, 500), {"dst": rng.integers(0, 100, 500)}],
            ("meta", 7, rng.standard_normal(64)),
        )
        encoded = encode_chunk(payload)
        assert encoded is not None
        chunk, segment = encoded
        try:
            decoded = decode_chunk(chunk)
        finally:
            segment.unlink()
        assert np.array_equal(decoded[0][0], payload[0][0])
        assert np.array_equal(decoded[0][1]["dst"], payload[0][1]["dst"])
        assert decoded[1][0] == "meta" and decoded[1][1] == 7
        assert np.array_equal(decoded[1][2], payload[1][2])

    def test_decoded_arrays_are_writable_copies(self):
        arr = np.arange(1000, dtype=np.int64)
        chunk, segment = encode_chunk((arr,))
        try:
            (out,) = decode_chunk(chunk)
        finally:
            segment.unlink()
        out[0] = -1  # reservoirs mutate their backing arrays in place
        assert arr[0] == 0

    def test_small_payloads_skip_the_segment(self):
        tiny = np.arange(4, dtype=np.int64)  # 32 bytes < SHM_MIN_ARRAY_BYTES
        assert tiny.nbytes < SHM_MIN_ARRAY_BYTES
        assert encode_chunk((tiny, "x")) is None

    def test_control_message_is_header_sized(self):
        big = np.arange(1 << 18, dtype=np.int64)  # 2 MiB of array bytes
        chunk, segment = encode_chunk((big, big[: 1 << 17]))
        try:
            assert len(chunk.payload) < 4096
        finally:
            segment.unlink()

    def test_unlink_removes_dev_shm_entry_and_is_idempotent(self):
        before = _shm_entries()
        chunk, segment = encode_chunk((np.arange(1000, dtype=np.int64),))
        assert f"/dev/shm/{chunk.segment}" in _shm_entries() - before
        segment.unlink()
        segment.unlink()
        assert _shm_entries() == before

    def test_reservoir_backing_arrays_travel_by_segment(self):
        from repro.streaming.reservoir import EdgeReservoir

        res = EdgeReservoir(capacity=512, rng=np.random.default_rng(1))
        res.offer_batch(
            np.arange(400, dtype=np.int64), np.arange(400, dtype=np.int64) + 1
        )
        encoded = encode_chunk((res,))
        assert encoded is not None  # backing arrays were spilled
        chunk, segment = encoded
        try:
            (decoded,) = decode_chunk(chunk)
        finally:
            segment.unlink()
        a, b = res.edges(), decoded.edges()
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])
        assert decoded.seen == res.seen and decoded.capacity == res.capacity


class TestExecutorLifecycle:
    def test_map_dpus_leaves_no_segments(self):
        before = _shm_entries()
        ex = ProcessExecutor(jobs=2)
        try:
            dpus = [np.arange(2000, dtype=np.int64) + i for i in range(4)]
            payloads = [np.arange(2000, dtype=np.int64) * i for i in range(4)]
            results = ex.map_dpus(_identity, dpus, payloads)
            for got, want in zip(results, payloads):
                assert np.array_equal(got, want)
        finally:
            ex.close()
        assert _shm_entries() == before
        assert not ex._segments

    def test_worker_failure_unlinks_segments(self):
        before = _shm_entries()
        ex = ProcessExecutor(jobs=2)
        try:
            dpus = [np.arange(2000, dtype=np.int64) for _ in range(4)]
            with pytest.raises(RuntimeError, match="simulated worker failure"):
                ex.map_dpus(_boom, dpus, [None] * 4)
        finally:
            ex.close()
        assert _shm_entries() == before
        assert not ex._segments

    def test_abandoned_async_map_is_cleaned_by_close(self):
        before = _shm_entries()
        ex = ProcessExecutor(jobs=2)
        dpus = [np.arange(2000, dtype=np.int64) for _ in range(4)]
        join = ex.map_dpus_async(_identity, dpus, [d.copy() for d in dpus])
        # Caller walks away without joining: close() (what DpuSet.free()
        # triggers) must reap the segments.
        ex.close()
        assert _shm_entries() == before
        del join

    def test_full_run_and_free_leave_no_segments(self, graph):
        before = _shm_entries()
        result = PimTriangleCounter(
            num_colors=3, seed=0, executor="process", jobs=2
        ).count(graph)
        assert result.count >= 0
        assert _shm_entries() == before

    def test_batched_ingest_with_reservoir_leaves_no_segments(self, graph):
        before = _shm_entries()
        serial = PimTriangleCounter(
            num_colors=3, seed=0, reservoir_capacity=256, batch_edges=700
        ).count(graph)
        proc = PimTriangleCounter(
            num_colors=3,
            seed=0,
            reservoir_capacity=256,
            batch_edges=700,
            executor="process",
            jobs=2,
        ).count(graph)
        assert proc.count == serial.count
        assert dict(proc.clock.phases) == dict(serial.clock.phases)
        assert _shm_entries() == before


class TestTransportParity:
    def test_shm_and_pickle_paths_bit_identical(self, graph, monkeypatch):
        serial = PimTriangleCounter(num_colors=3, seed=0).count(graph)
        shm_run = PimTriangleCounter(
            num_colors=3, seed=0, executor="process", jobs=2
        ).count(graph)
        monkeypatch.setenv("REPRO_SHM", "0")
        pickle_run = PimTriangleCounter(
            num_colors=3, seed=0, executor="process", jobs=2
        ).count(graph)
        for run in (shm_run, pickle_run):
            assert run.count == serial.count
            assert np.array_equal(run.per_dpu_counts, serial.per_dpu_counts)
            assert dict(run.clock.phases) == dict(serial.clock.phases)
            k, ks = run.kernel, serial.kernel
            assert (k.instructions, k.dma_requests, k.dma_bytes) == (
                ks.instructions,
                ks.dma_requests,
                ks.dma_bytes,
            )

    def test_env_flag_selects_transport(self, graph, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert ProcessExecutor(jobs=2)._shm_wanted is False
        monkeypatch.delenv("REPRO_SHM")
        assert ProcessExecutor(jobs=2)._shm_wanted is True

    def test_payload_bytes_drop_to_header_size(self, graph, monkeypatch):
        """The serialization-counting hook: with the transport on, no routed
        edge array rides the pickle stream — per-chunk bytes stay at control
        -message size while the pickling path scales with the sample."""
        sizes: list[tuple[str, int]] = []
        set_payload_pickle_hook(lambda n, transport: sizes.append((transport, n)))
        try:
            PimTriangleCounter(
                num_colors=3, seed=0, executor="process", jobs=2
            ).count(graph)
            monkeypatch.setenv("REPRO_SHM", "0")
            PimTriangleCounter(
                num_colors=3, seed=0, executor="process", jobs=2
            ).count(graph)
        finally:
            set_payload_pickle_hook(None)
        shm_sizes = [n for t, n in sizes if t == "shm"]
        pickle_sizes = [n for t, n in sizes if t == "pickle"]
        assert shm_sizes and pickle_sizes
        # ~header size, absolutely and relative to the pickled sample bytes.
        assert max(shm_sizes) < 16_384
        assert max(shm_sizes) < max(pickle_sizes) / 5
