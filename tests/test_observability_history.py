"""Run-history store and trend regression gate.

The load-bearing assertions: ingestion is lossless (the stored document
round-trips byte-for-byte and every numeric leaf is queryable), the
committed benchmark baselines re-ingested against themselves are trend-clean
(a stable history never bricks the gate), and an injected 20% simulated-clock
drift over a synthetic 10-run history is flagged as a hard regression (the
gate has teeth).  Young series (< min_runs) only warn.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import PimTriangleCounter
from repro.graph.generators import erdos_renyi
from repro.observability.history import (
    RunHistory,
    classify_metric,
    detect_trends,
    flatten_numeric,
    main as history_main,
    render_trend_summary,
)
from repro.telemetry import RunReport, Telemetry
import numpy as np

BASELINE_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"


def small_report(seed: int = 0) -> dict:
    """A real RunReport document from one tiny pipeline run."""
    rng = np.random.default_rng(11)
    graph = erdos_renyi(80, 400, rng).canonicalize()
    telemetry = Telemetry(detail=True)
    result = PimTriangleCounter(num_colors=4, seed=seed, telemetry=telemetry).count(
        graph
    )
    return RunReport.from_result(
        result, graph=graph, config={"colors": 4, "seed": seed, "executor": "serial"}
    ).to_dict()


@pytest.fixture(scope="module")
def report_doc() -> dict:
    return small_report()


class TestFlatten:
    def test_scalars_bools_and_nesting(self):
        flat = flatten_numeric(
            {"a": 1, "b": {"c": 2.5, "d": True}, "e": "text", "f": [1, 2]}
        )
        assert flat == {"a": 1.0, "b.c": 2.5, "b.d": 1.0}

    def test_metric_registry_entries_collapse(self):
        flat = flatten_numeric(
            {
                "m": {"kind": "counter", "value": 7, "help": "x"},
                "g": {"kind": "gauge", "value": 1.5},
                "h": {"kind": "histogram", "sum": 10.0, "count": 4, "buckets": {}},
            }
        )
        assert flat == {"m": 7.0, "g": 1.5, "h.sum": 10.0, "h.count": 4.0}

    def test_spans_subtree_skipped(self):
        assert flatten_numeric({"spans": {"x": 1}, "y": 2}) == {"y": 2.0}

    @settings(max_examples=25, deadline=None)
    @given(
        st.dictionaries(
            st.text(
                alphabet=st.characters(whitelist_categories=("Ll",)),
                min_size=1,
                max_size=6,
            ),
            st.one_of(
                st.integers(-1000, 1000),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
                st.booleans(),
                st.dictionaries(
                    st.text(
                        alphabet=st.characters(whitelist_categories=("Ll",)),
                        min_size=1,
                        max_size=6,
                    ),
                    st.integers(-1000, 1000),
                    max_size=3,
                ),
            ),
            max_size=6,
        )
    )
    def test_every_numeric_leaf_lands_exactly_once(self, record):
        flat = flatten_numeric(record)
        expected = 0
        for key, value in record.items():
            if key == "spans":  # mirrors flatten_numeric's default skip list
                continue
            if isinstance(value, dict):
                expected += sum(
                    isinstance(v, (int, float, bool))
                    for k, v in value.items()
                    if k != "spans"
                )
            elif isinstance(value, (int, float, bool)):
                expected += 1
        assert len(flat) == expected
        assert all(isinstance(v, float) for v in flat.values())


class TestIngestRoundTrip:
    def test_report_document_round_trips(self, report_doc, tmp_path):
        with RunHistory(tmp_path / "h.db") as history:
            (ref,) = history.ingest(report_doc, source="unit")
            record = history.run(ref)
        # JSON normalization (tuples -> lists) is the only permitted change.
        assert record["document"] == json.loads(json.dumps(report_doc))
        assert record["graph"] == report_doc["graph"]["name"]
        assert record["kind"] == "report"
        assert record["executor"] == "serial"

    def test_report_samples_cover_result_and_phases(self, report_doc, tmp_path):
        with RunHistory(tmp_path / "h.db") as history:
            (ref,) = history.ingest(report_doc)
            samples = history.samples(ref)
            record = history.run(ref)
        result = report_doc["result"]
        assert samples["result.count"] == float(result["count"])
        for phase, sim in result["phases"].items():
            assert samples[f"result.phases.{phase}"] == pytest.approx(float(sim))
            assert record["phases"][phase]["sim_seconds"] == pytest.approx(float(sim))
            # Wall per phase comes from the top-level spans.
            assert record["phases"][phase]["wall_seconds"] is not None
        assert "wall_seconds" in samples

    def test_bench_artifact_one_row_per_graph(self, tmp_path):
        path = BASELINE_DIR / "BENCH_telemetry.json"
        document = json.loads(path.read_text())
        with RunHistory(tmp_path / "h.db") as history:
            refs = history.ingest_file(str(path))
            assert len(refs) == len(document["runs"])
            graphs = history.graphs()
            assert sorted(r["graph"] for r in document["runs"]) == graphs
            record = history.run(refs[0])
        assert record["kind"] == "bench"
        assert record["config"]["tier"] == document["tier"]
        assert record["document"] in document["runs"]

    def test_all_committed_baselines_ingest(self, tmp_path):
        with RunHistory(tmp_path / "h.db") as history:
            for path in sorted(BASELINE_DIR.glob("BENCH_*.json")):
                assert history.ingest_file(str(path))
            assert len(history.schemas()) == 4

    def test_unknown_schema_rejected(self, tmp_path):
        with RunHistory(tmp_path / "h.db") as history:
            with pytest.raises(ValueError, match="cannot ingest"):
                history.ingest({"schema": "mystery/1"})

    def test_series_and_compare(self, report_doc, tmp_path):
        with RunHistory(tmp_path / "h.db") as history:
            (a,) = history.ingest(report_doc, source="first")
            (b,) = history.ingest(report_doc, source="second")
            graph = report_doc["graph"]["name"]
            series = history.series(graph, "result.count")
            assert series == [(a, series[0][1]), (b, series[0][1])]
            diff = history.compare(a, b)
        assert diff["entries"]
        assert all(e["rel_change"] == 0.0 for e in diff["entries"])


class TestTrendGate:
    def test_rules_classify_the_gated_families(self):
        assert classify_metric("result.phases.triangle_count").severity == "hard"
        assert classify_metric("result.count").direction == "exact"
        assert classify_metric("wall_seconds").severity == "warn"
        assert classify_metric("throughput_edges_per_ms").direction == "lower_worse"
        assert classify_metric("skew.edges_routed.max_over_mean").severity == "hard"
        assert classify_metric("some.unrelated.metric") is None

    def test_injected_sim_clock_drift_fails(self, report_doc, tmp_path):
        """A 20% simulated-clock regression on the latest run is a hard fail."""
        with RunHistory(tmp_path / "h.db") as history:
            for _ in range(9):
                history.ingest(report_doc)
            drifted = copy.deepcopy(report_doc)
            for phase in drifted["result"]["phases"]:
                drifted["result"]["phases"][phase] *= 1.20
            history.ingest(drifted, source="drifted")
            summary = detect_trends(history, window=5, min_runs=5)
        assert summary["failed"]
        failing = {e["metric"] for e in summary["entries"] if e["verdict"] == "regression"}
        assert any(m.startswith("result.phases.") for m in failing)
        rendered = render_trend_summary(summary)
        assert "hard failures" in rendered

    def test_stable_self_history_is_clean(self, tmp_path):
        """Committed baselines re-ingested against themselves never fail."""
        with RunHistory(tmp_path / "h.db") as history:
            for _ in range(3):
                for path in sorted(BASELINE_DIR.glob("BENCH_*.json")):
                    history.ingest_file(str(path))
            summary = detect_trends(history, window=5, min_runs=2)
        assert summary["entries"]
        assert not summary["failed"]
        assert not summary["warnings"]

    def test_young_series_downgrades_to_warn(self, report_doc, tmp_path):
        with RunHistory(tmp_path / "h.db") as history:
            history.ingest(report_doc)
            drifted = copy.deepcopy(report_doc)
            for phase in drifted["result"]["phases"]:
                drifted["result"]["phases"][phase] *= 1.20
            history.ingest(drifted)
            summary = detect_trends(history, window=5, min_runs=5)
        assert not summary["failed"]
        assert summary["warnings"]

    def test_exact_metric_any_deviation_flags(self, report_doc, tmp_path):
        with RunHistory(tmp_path / "h.db") as history:
            for _ in range(6):
                history.ingest(report_doc)
            off_by_one = copy.deepcopy(report_doc)
            off_by_one["result"]["count"] += 1
            history.ingest(off_by_one)
            summary = detect_trends(history, min_runs=5)
        assert summary["failed"]
        assert any("result.count" in line for line in summary["failures"])

    def test_improvement_does_not_fail(self, report_doc, tmp_path):
        """Drift in the good direction (faster clocks) passes the gate."""
        with RunHistory(tmp_path / "h.db") as history:
            for _ in range(6):
                history.ingest(report_doc)
            faster = copy.deepcopy(report_doc)
            for phase in faster["result"]["phases"]:
                faster["result"]["phases"][phase] *= 0.5
            history.ingest(faster)
            summary = detect_trends(history, min_runs=5)
        phase_entries = [
            e
            for e in summary["entries"]
            if e["metric"].startswith("result.phases.")
        ]
        assert phase_entries
        assert all(e["verdict"] == "ok" for e in phase_entries)


class TestHistoryCli:
    def test_ingest_list_show_trend(self, tmp_path, capsys):
        db = str(tmp_path / "h.db")
        baseline = str(BASELINE_DIR / "BENCH_telemetry.json")
        assert history_main([db, "ingest", baseline]) == 0
        out = capsys.readouterr().out
        assert "ingested" in out

        assert history_main([db, "list", "--graph", "wikipedia"]) == 0
        out = capsys.readouterr().out
        assert "wikipedia" in out and "1 run(s)" in out

        assert history_main([db, "show", "1"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["id"] == 1 and shown["samples"]

        trend_out = tmp_path / "trend.json"
        assert history_main([db, "trend", "--min-runs", "2", "--out", str(trend_out)]) == 0
        summary = json.loads(trend_out.read_text())
        assert summary["schema"] == "repro-history-trend/1"

    def test_compare_subcommand(self, tmp_path, capsys):
        db = str(tmp_path / "h.db")
        baseline = str(BASELINE_DIR / "BENCH_telemetry.json")
        history_main([db, "ingest", baseline, baseline])
        capsys.readouterr()
        first_two_same_graph = None
        with RunHistory(db) as history:
            rows = history.runs()
            by_graph: dict = {}
            for row in rows:
                by_graph.setdefault(row["graph"], []).append(row["id"])
            first_two_same_graph = next(iter(by_graph.values()))[:2]
        a, b = first_two_same_graph
        assert history_main([db, "compare", str(a), str(b)]) == 0
        assert "comparing run" in capsys.readouterr().out

    def test_trend_exit_code_on_regression(self, tmp_path):
        db = str(tmp_path / "h.db")
        doc = small_report()
        with RunHistory(db) as history:
            for _ in range(6):
                history.ingest(doc)
            drifted = copy.deepcopy(doc)
            drifted["result"]["count"] += 5
            history.ingest(drifted)
        assert history_main([db, "trend", "--min-runs", "5"]) == 1


class TestConcurrentIngest:
    """WAL + busy_timeout make parallel writers (service sessions, CI jobs
    sharing a cached store) wait instead of failing with 'database is locked'."""

    def test_store_opens_in_wal_mode(self, tmp_path):
        db = str(tmp_path / "wal.db")
        with RunHistory(db) as history:
            mode = history._db.execute("PRAGMA journal_mode").fetchone()[0]
            assert mode.lower() == "wal"
        # In-memory stores skip WAL (it needs a file) but must still work.
        with RunHistory(":memory:") as history:
            history.ingest(small_report())
            assert len(history.runs()) == 1

    def test_parallel_writers_all_land(self, tmp_path, report_doc):
        import threading

        db = str(tmp_path / "contended.db")
        writers, per_writer = 6, 5
        errors: list[BaseException] = []
        barrier = threading.Barrier(writers)

        def ingest_many():
            try:
                barrier.wait()  # maximize write overlap
                with RunHistory(db, busy_timeout=30.0) as history:
                    for _ in range(per_writer):
                        history.ingest(report_doc)
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=ingest_many) for _ in range(writers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors, errors
        with RunHistory(db) as history:
            rows = history.runs()
            assert len(rows) == writers * per_writer
            # Every row's stored document is intact despite the contention
            # (compared post-JSON-round-trip: tuples legitimately become lists).
            canonical = json.loads(json.dumps(report_doc))
            for row in rows[:3]:
                stored = history.run(row["id"])
                assert stored["document"] == canonical


def _service_snapshot(requests=3.0, p99=0.002):
    """A minimal repro-service-metrics/1 document (the metrics-op shape)."""
    return {
        "schema": "repro-service-metrics/1",
        "generated_at": 1000.0,
        "uptime_seconds": 60.0,
        "observability": True,
        "max_sessions": 8,
        "sessions_open": 1,
        "service": {
            "service.requests.insert": {
                "kind": "counter", "value": requests, "help": "", "volatile": False,
            },
            "service.rejections.backpressure": {
                "kind": "counter", "value": 1.0, "help": "", "volatile": False,
            },
            "service.sessions_open": {
                "kind": "gauge", "value": 1.0, "help": "", "volatile": False,
            },
            "service.op_latency_seconds.insert": {
                "kind": "histogram",
                "buckets": [0.001, 0.01],
                "counts": [2, 1, 0],
                "sum": 0.004,
                "count": 3,
                "min": 0.0005,
                "max": 0.003,
                "help": "",
                "volatile": True,
            },
        },
        "latency": {
            "insert": {"n": 3, "mean": 0.0013, "p50": 0.001, "p99": p99},
        },
        "sessions": {
            "alpha": {
                "metrics": {
                    "session.ops.insert": {
                        "kind": "counter", "value": 3.0, "help": "",
                        "volatile": False,
                    },
                },
                "latency": {
                    "insert": {"n": 3, "mean": 0.0013, "p50": 0.001, "p99": p99},
                },
                "pending": 0,
                "resident_bytes": 512,
                "rounds": 3,
            },
        },
    }


class TestServiceSnapshotIngest:
    def test_one_row_for_service_one_per_session(self, tmp_path):
        with RunHistory(str(tmp_path / "h.db")) as history:
            refs = history.ingest(_service_snapshot())
            rows = {row["id"]: row for row in history.runs()}
        assert len(refs) == 2
        kinds = {rows[r]["kind"] for r in refs}
        assert kinds == {"service", "service-session"}
        graphs = {rows[r]["graph"] for r in refs}
        assert graphs == {"service", "session:alpha"}

    def test_samples_cover_instruments_latency_and_scalars(self, tmp_path):
        with RunHistory(str(tmp_path / "h.db")) as history:
            service_ref, session_ref = history.ingest(_service_snapshot())
            service = history.run(service_ref)["samples"]
            session = history.run(session_ref)["samples"]
        assert service["service.requests.insert"] == 3.0
        assert service["service.op_latency_seconds.insert.sum"] == 0.004
        assert service["service.op_latency_seconds.insert.count"] == 3.0
        assert service["service.latency.insert.p99"] == 0.002
        assert service["service.uptime_seconds"] == 60.0
        assert session["session.ops.insert"] == 3.0
        assert session["session.latency.insert.p50"] == 0.001
        assert session["session.resident_bytes"] == 512.0

    def test_latency_drift_warns_but_never_hard_fails(self, tmp_path):
        with RunHistory(str(tmp_path / "h.db")) as history:
            for _ in range(6):
                history.ingest(_service_snapshot())
            history.ingest(_service_snapshot(requests=50.0, p99=0.5))
            summary = detect_trends(
                history, schema="repro-service-metrics/1", min_runs=2
            )
        drifted = [
            e
            for e in summary["entries"]
            if e["verdict"] != "ok" and "latency" in e["metric"]
        ]
        assert drifted, "the p99 regression must at least warn"
        assert summary["failures"] == []  # wall-derived series never gate hard
        assert not summary["failed"]


class TestServiceTrendRules:
    def test_service_series_classify_as_warn(self):
        for name in (
            "service.op_latency_seconds.insert.count",
            "service.latency.insert.p99",
            "session.latency.count.n",
            "session.ops.insert",
            "service.rejections.backpressure",
            "session.queue_wait_seconds.sum",
        ):
            rule = classify_metric(name)
            assert rule is not None, name
            assert rule.severity == "warn", name
            assert rule.direction == "higher_worse", name

    def test_histogram_count_never_claimed_by_exact_count_rule(self):
        # `…op_latency_seconds.count.count` ends in ".count" but is a
        # histogram sample total, not a triangle count: the service rules
        # sit first so the exact-hard rule never sees it.
        rule = classify_metric("service.op_latency_seconds.count.count")
        assert rule.severity == "warn"
        # The real triangle-count metric is still exact-hard.
        assert classify_metric("result.count").direction == "exact"
