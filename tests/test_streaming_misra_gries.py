"""Misra-Gries summary: the n/K guarantee, size bound, mergeability."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.validation import ConfigurationError
from repro.streaming.misra_gries import MisraGries, top_nodes_from_counts


def stream_with_heavy_hitters(n_background: int, heavy: dict[int, int], rng) -> np.ndarray:
    items = [rng.integers(1000, 2000, size=n_background)]
    for item, count in heavy.items():
        items.append(np.full(count, item))
    stream = np.concatenate(items)
    return rng.permutation(stream)


class TestScalarRule:
    def test_size_never_exceeds_k(self, rng):
        mg = MisraGries(5)
        for item in rng.integers(0, 50, size=2000).tolist():
            mg.update(item)
            assert mg.size <= 5

    def test_single_item_stream(self):
        mg = MisraGries(3)
        for _ in range(10):
            mg.update(7)
        assert mg.frequency_lower_bound(7) == 10

    def test_decrement_case(self):
        mg = MisraGries(2)
        for item in [1, 2, 3]:  # third distinct item triggers global decrement
            mg.update(item)
        assert mg.size == 0  # all counters were 1, all decremented away

    def test_guarantee_heavy_hitter_present(self, rng):
        """Every item with frequency > n/K must be in the summary."""
        stream = stream_with_heavy_hitters(3000, {1: 800, 2: 500}, rng)
        mg = MisraGries(10)
        for item in stream.tolist():
            mg.update(item)
        n = stream.size
        for item in (1, 2):
            true_freq = int((stream == item).sum())
            assert true_freq > n / 10
            assert item in mg.counters

    def test_counter_is_lower_bound(self, rng):
        stream = stream_with_heavy_hitters(1000, {5: 400}, rng)
        mg = MisraGries(8)
        for item in stream.tolist():
            mg.update(item)
        assert mg.frequency_lower_bound(5) <= int((stream == 5).sum())

    def test_error_bound(self):
        mg = MisraGries(4)
        for item in range(100):
            mg.update(item % 10)
        assert mg.error_bound() == pytest.approx(100 / 4)


class TestBatchRule:
    def test_size_bound(self, rng):
        mg = MisraGries(7)
        mg.update_array(rng.integers(0, 100, size=5000))
        assert mg.size <= 7

    def test_guarantee_after_batches(self, rng):
        stream = stream_with_heavy_hitters(4000, {1: 900, 2: 700, 3: 600}, rng)
        mg = MisraGries(12)
        for chunk in np.array_split(stream, 7):
            mg.update_array(chunk)
        for item in (1, 2, 3):
            assert item in mg.counters

    def test_counters_are_lower_bounds(self, rng):
        stream = stream_with_heavy_hitters(2000, {9: 500}, rng)
        mg = MisraGries(6)
        mg.update_array(stream)
        for item, counter in mg.counters.items():
            assert counter <= int((stream == item).sum())

    def test_empty_batch(self):
        mg = MisraGries(3)
        mg.update_array(np.array([]))
        assert mg.size == 0 and mg.items_seen == 0

    @settings(max_examples=30, deadline=None)
    @given(
        items=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=300),
        k=st.integers(min_value=1, max_value=10),
    )
    def test_property_guarantee(self, items, k):
        """Batch path: anything with freq > n/k survives; counters lower-bound."""
        arr = np.array(items)
        mg = MisraGries(k)
        mg.update_array(arr)
        assert mg.size <= k
        n = len(items)
        values, counts = np.unique(arr, return_counts=True)
        for v, c in zip(values.tolist(), counts.tolist()):
            if c > n / k:
                assert v in mg.counters
            assert mg.frequency_lower_bound(v) <= c


class TestMerge:
    def test_merge_preserves_guarantee(self, rng):
        stream = stream_with_heavy_hitters(6000, {1: 1500, 2: 1200}, rng)
        parts = np.array_split(stream, 4)
        merged = MisraGries(10)
        for part in parts:
            local = MisraGries(10)
            local.update_array(part)
            merged.merge(local)
        assert merged.items_seen == stream.size
        for item in (1, 2):
            assert item in merged.counters

    def test_merge_size_bound(self, rng):
        a = MisraGries(5)
        a.update_array(rng.integers(0, 40, size=1000))
        b = MisraGries(5)
        b.update_array(rng.integers(40, 80, size=1000))
        a.merge(b)
        assert a.size <= 5


class TestTop:
    def test_top_ordering(self):
        mg = MisraGries(10)
        mg.counters = {3: 100, 7: 50, 1: 200}
        assert mg.top(2) == [1, 3]

    def test_top_tie_broken_by_id(self):
        mg = MisraGries(10)
        mg.counters = {9: 50, 2: 50}
        assert mg.top(2) == [2, 9]

    def test_top_more_than_size(self):
        mg = MisraGries(10)
        mg.counters = {1: 5}
        assert mg.top(4) == [1]

    def test_oracle_top_nodes(self):
        deg = np.array([3, 9, 1, 9, 0])
        assert top_nodes_from_counts(deg, 2) == [1, 3]


class TestValidation:
    def test_rejects_zero_k(self):
        with pytest.raises(ConfigurationError):
            MisraGries(0)
