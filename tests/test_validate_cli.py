"""``repro-validate`` — artifact schema checking over files and globs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.api import PimTriangleCounter
from repro.graph.generators import erdos_renyi
from repro.observability.validate import main as validate_main, validate_path
from repro.telemetry import RunReport, Telemetry


@pytest.fixture()
def artifacts(tmp_path):
    """One valid report, one valid (complete) stream, one in-flight stream."""
    rng = np.random.default_rng(3)
    graph = erdos_renyi(60, 250, rng).canonicalize()
    telemetry = Telemetry()
    result = PimTriangleCounter(num_colors=4, seed=1, telemetry=telemetry).count(graph)
    report = tmp_path / "report.json"
    RunReport.from_result(result, graph=graph).write_json(str(report))

    complete = tmp_path / "complete.ndjson"
    complete.write_text(
        "\n".join(
            json.dumps(r)
            for r in [
                {"ts": 1.0, "run_id": "r", "event": "run_start", "graph": "g"},
                {"ts": 2.0, "run_id": "r", "event": "estimate", "estimate": 3.0},
                {"ts": 3.0, "run_id": "r", "event": "run_end", "status": "ok"},
            ]
        )
        + "\n"
    )
    in_flight = tmp_path / "inflight.ndjson"
    in_flight.write_text(
        json.dumps({"ts": 1.0, "run_id": "r", "event": "run_start", "graph": "g"})
        + "\n"
    )
    return tmp_path, report, complete, in_flight


class TestValidatePath:
    def test_valid_report_and_stream(self, artifacts):
        _, report, complete, _ = artifacts
        assert validate_path(str(report)) == []
        assert validate_path(str(complete)) == []

    def test_invalid_report(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "repro-run-report/2"}))
        errors = validate_path(str(bad))
        assert any("missing or non-object section" in e for e in errors)

    def test_unreadable_inputs(self, tmp_path):
        garbled = tmp_path / "garbled.json"
        garbled.write_text("{not json")
        assert any("unreadable" in e for e in validate_path(str(garbled)))
        assert any("unreadable" in e for e in validate_path(str(tmp_path / "no.json")))

    def test_require_complete_flags_in_flight(self, artifacts):
        _, _, complete, in_flight = artifacts
        assert validate_path(str(in_flight)) == []
        errors = validate_path(str(in_flight), require_complete=True)
        assert any("no terminal run_end" in e for e in errors)
        assert validate_path(str(complete), require_complete=True) == []


class TestValidateCli:
    def test_all_valid_exits_zero(self, artifacts, capsys):
        _, report, complete, _ = artifacts
        assert validate_main([str(report), str(complete)]) == 0
        out = capsys.readouterr().out
        assert out.count("ok  ") == 2

    def test_glob_expansion_and_failure_exit(self, artifacts, capsys):
        tmp_path, *_ = artifacts
        bad = tmp_path / "broken.ndjson"
        bad.write_text(
            json.dumps({"ts": 1.0, "run_id": "r", "event": "telepathy"}) + "\n"
        )
        rc = validate_main([str(tmp_path / "*.ndjson"), "--require-complete"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out and "unknown event" in out

    def test_quiet_prints_only_failures(self, artifacts, capsys):
        _, report, complete, _ = artifacts
        assert validate_main([str(report), str(complete), "--quiet"]) == 0
        assert capsys.readouterr().out == ""


class TestEmptyInputs:
    """An empty input set is a hard failure, never a silent exit 0."""

    def test_empty_glob_fails_with_clear_message(self, tmp_path, capsys):
        rc = validate_main([str(tmp_path / "nothing" / "*.ndjson")])
        err = capsys.readouterr().err
        assert rc == 2
        assert "matched no files" in err
        assert "no artifacts to validate" in err

    def test_empty_glob_fatal_even_when_other_artifacts_pass(
        self, artifacts, capsys
    ):
        tmp_path, report, *_ = artifacts
        rc = validate_main([str(report), str(tmp_path / "missing-*.json")])
        captured = capsys.readouterr()
        assert rc == 1
        assert "ok  " in captured.out  # the report itself validated
        assert "matched no files" in captured.err

    def test_literal_missing_path_still_reported_per_file(self, tmp_path, capsys):
        # Non-glob paths keep the old behavior: validated (and failed) as
        # unreadable artifacts rather than pre-flight glob errors.
        rc = validate_main([str(tmp_path / "no-such.json")])
        out = capsys.readouterr().out
        assert rc == 1
        assert "unreadable" in out

    def test_multiple_empty_globs_each_reported(self, tmp_path, capsys):
        rc = validate_main([str(tmp_path / "*.json"), str(tmp_path / "*.ndjson")])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.count("matched no files") == 2
