"""Region table over sorted samples (paper Fig. 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.orient import orient_and_sort
from repro.core.region_index import build_region_index


@pytest.fixture
def index():
    # Sorted first-node column: regions 1 -> [0,3), 4 -> [3,4), 7 -> [4,6).
    return build_region_index(np.array([1, 1, 1, 4, 7, 7]))


class TestBuild:
    def test_regions(self, index):
        assert index.num_regions == 3
        assert index.nodes.tolist() == [1, 4, 7]
        assert index.starts.tolist() == [0, 3, 4]
        assert index.ends.tolist() == [3, 4, 6]

    def test_empty(self):
        idx = build_region_index(np.array([], dtype=np.int64))
        assert idx.num_regions == 0
        assert idx.lookup(3) == (0, 0)

    def test_table_bytes(self, index):
        assert index.table_bytes() == 3 * 8


class TestLookup:
    def test_present(self, index):
        assert index.lookup(4) == (3, 4)

    def test_absent_between(self, index):
        assert index.lookup(5) == (0, 0)

    def test_absent_above(self, index):
        assert index.lookup(100) == (0, 0)

    def test_absent_below(self, index):
        assert index.lookup(0) == (0, 0)

    def test_lookup_many(self, index):
        starts, ends = index.lookup_many(np.array([1, 5, 7, 0]))
        assert starts.tolist() == [0, 0, 4, 0]
        assert ends.tolist() == [3, 0, 6, 0]

    def test_degrees_of(self, index):
        deg = index.degrees_of(np.array([1, 4, 7, 9]))
        assert deg.tolist() == [3, 1, 2, 0]

    def test_lookup_many_on_empty_index(self):
        idx = build_region_index(np.array([], dtype=np.int64))
        starts, ends = idx.lookup_many(np.array([1, 2]))
        assert starts.tolist() == [0, 0]
        assert ends.tolist() == [0, 0]


class TestSearchSteps:
    def test_log_bound(self, index):
        assert index.search_steps() == 2  # ceil(log2(4))

    def test_empty_index_one_step(self):
        idx = build_region_index(np.array([], dtype=np.int64))
        assert idx.search_steps() == 1


class TestConsistencyWithSort:
    def test_every_edge_inside_own_region(self, small_graph):
        u, v, _ = orient_and_sort(small_graph.src, small_graph.dst)
        idx = build_region_index(u)
        for e in range(u.size):
            start, end = idx.lookup(int(u[e]))
            assert start <= e < end

    def test_region_lengths_are_forward_degrees(self, small_graph):
        u, v, _ = orient_and_sort(small_graph.src, small_graph.dst)
        idx = build_region_index(u)
        fwd = np.bincount(u, minlength=small_graph.num_nodes)
        for node, start, end in zip(idx.nodes, idx.starts, idx.ends):
            assert end - start == fwd[node]
