"""Unit-formatting helpers."""

from __future__ import annotations

import pytest

from repro.common.units import GiB, KiB, MiB, fmt_bytes, fmt_rate, fmt_time


class TestConstants:
    def test_binary_sizes(self):
        assert KiB == 1024
        assert MiB == 1024 * 1024
        assert GiB == 1024**3

    def test_upmem_mram_size(self):
        # The constant used throughout: a 64-MB MRAM bank.
        assert 64 * MiB == 67108864


class TestFmtBytes:
    def test_bytes(self):
        assert fmt_bytes(512) == "512 B"

    def test_kib(self):
        assert fmt_bytes(64 * KiB) == "64.0 KiB"

    def test_mib(self):
        assert fmt_bytes(64 * MiB) == "64.0 MiB"

    def test_gib(self):
        assert fmt_bytes(2 * GiB) == "2.0 GiB"

    def test_fractional(self):
        assert fmt_bytes(1536) == "1.5 KiB"


class TestFmtTime:
    def test_seconds(self):
        assert fmt_time(2.5) == "2.500 s"

    def test_milliseconds(self):
        assert fmt_time(0.0032) == "3.200 ms"

    def test_microseconds(self):
        assert fmt_time(45e-6) == "45.000 us"

    def test_nanoseconds(self):
        assert fmt_time(12e-9) == "12.0 ns"


class TestFmtRate:
    def test_zero_time_is_infinite(self):
        assert fmt_rate(100, 0.0) == "inf edges/s"

    def test_mega(self):
        assert fmt_rate(2_000_000, 1.0) == "2.0 Medges/s"

    def test_kilo_with_unit(self):
        assert fmt_rate(1e6, 2.0, unit="ops") == "500.0 Kops/s"

    def test_small(self):
        assert fmt_rate(10, 1.0) == "10.0 edges/s"

    @pytest.mark.parametrize("count,sec", [(1e3, 1), (1e6, 1), (1e9, 1)])
    def test_always_has_unit_suffix(self, count, sec):
        assert fmt_rate(count, sec).endswith("edges/s")
