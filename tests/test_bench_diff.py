"""tools/bench_diff.py — the benchmark regression gate."""

from __future__ import annotations

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

DIFF_PATH = Path(__file__).resolve().parent.parent / "tools" / "bench_diff.py"
BASELINE_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"


@pytest.fixture(scope="module")
def bench_diff():
    spec = importlib.util.spec_from_file_location("bench_diff", DIFF_PATH)
    module = importlib.util.module_from_spec(spec)
    # dataclasses resolves the module's string annotations through
    # sys.modules, so the module must be registered before exec.
    sys.modules["bench_diff"] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def telemetry_doc():
    return {
        "schema": "repro-bench-telemetry/1",
        "tier": "tiny",
        "seed": 0,
        "colors": 4,
        "runs": [
            {
                "graph": "orkut",
                "count": 1000,
                "phases": {
                    "setup": 0.010,
                    "sample_creation": 0.002,
                    "triangle_count": 0.005,
                },
                "throughput_edges_per_ms": 2500.0,
                "load_balance": 1.8,
                "wall_seconds": 0.4,
            },
            {
                "graph": "wikipedia",
                "count": 2000,
                "phases": {
                    "setup": 0.012,
                    "sample_creation": 0.003,
                    "triangle_count": 0.009,
                },
                "throughput_edges_per_ms": 1800.0,
                "load_balance": 2.1,
                "wall_seconds": 0.9,
            },
        ],
    }


class TestDiffDocuments:
    def test_identical_documents_pass(self, bench_diff, telemetry_doc):
        summary = bench_diff.diff_documents(telemetry_doc, telemetry_doc)
        assert summary["failed"] is False
        assert summary["failures"] == []
        assert all(e["verdict"] == "ok" for e in summary["entries"])

    def test_twenty_percent_simulated_regression_fails(
        self, bench_diff, telemetry_doc
    ):
        current = copy.deepcopy(telemetry_doc)
        current["runs"][0]["phases"]["triangle_count"] *= 1.20
        summary = bench_diff.diff_documents(telemetry_doc, current)
        assert summary["failed"] is True
        assert any("triangle_count" in f for f in summary["failures"])

    def test_small_drift_within_threshold_passes(self, bench_diff, telemetry_doc):
        current = copy.deepcopy(telemetry_doc)
        current["runs"][0]["phases"]["triangle_count"] *= 1.03
        summary = bench_diff.diff_documents(telemetry_doc, current)
        assert summary["failed"] is False

    def test_improvement_never_fails(self, bench_diff, telemetry_doc):
        current = copy.deepcopy(telemetry_doc)
        current["runs"][0]["phases"]["triangle_count"] *= 0.5
        current["runs"][0]["throughput_edges_per_ms"] *= 2.0
        summary = bench_diff.diff_documents(telemetry_doc, current)
        assert summary["failed"] is False
        assert any(e["verdict"] == "improved" for e in summary["entries"])

    def test_count_change_fails_regardless_of_threshold(
        self, bench_diff, telemetry_doc
    ):
        current = copy.deepcopy(telemetry_doc)
        current["runs"][0]["count"] += 1
        summary = bench_diff.diff_documents(
            telemetry_doc, current, threshold=10.0
        )
        assert summary["failed"] is True

    def test_throughput_drop_fails(self, bench_diff, telemetry_doc):
        current = copy.deepcopy(telemetry_doc)
        current["runs"][1]["throughput_edges_per_ms"] *= 0.7
        summary = bench_diff.diff_documents(telemetry_doc, current)
        assert summary["failed"] is True

    def test_wall_clock_regression_only_warns(self, bench_diff, telemetry_doc):
        current = copy.deepcopy(telemetry_doc)
        current["runs"][0]["wall_seconds"] *= 3.0
        summary = bench_diff.diff_documents(telemetry_doc, current)
        assert summary["failed"] is False
        assert any("wall_seconds" in w for w in summary["warnings"])

    def test_missing_graph_is_a_coverage_regression(
        self, bench_diff, telemetry_doc
    ):
        current = copy.deepcopy(telemetry_doc)
        del current["runs"][1]
        summary = bench_diff.diff_documents(telemetry_doc, current)
        assert summary["failed"] is True
        assert any("wikipedia" in f for f in summary["failures"])

    def test_new_graph_only_warns(self, bench_diff, telemetry_doc):
        current = copy.deepcopy(telemetry_doc)
        extra = copy.deepcopy(current["runs"][0])
        extra["graph"] = "kron"
        current["runs"].append(extra)
        summary = bench_diff.diff_documents(telemetry_doc, current)
        assert summary["failed"] is False
        assert any("kron" in w for w in summary["warnings"])

    def test_schema_mismatch_fails(self, bench_diff, telemetry_doc):
        current = copy.deepcopy(telemetry_doc)
        current["schema"] = "repro-bench-ingest/1"
        summary = bench_diff.diff_documents(telemetry_doc, current)
        assert summary["failed"] is True

    def test_unknown_schema_fails(self, bench_diff):
        doc = {"schema": "no-such-schema/9", "runs": []}
        summary = bench_diff.diff_documents(doc, doc)
        assert summary["failed"] is True

    def test_imbalance_schema_gates_skew_ratios(self, bench_diff):
        doc = {
            "schema": "repro-bench-imbalance/1",
            "runs": [
                {
                    "graph": "orkut",
                    "count": 42,
                    "baseline": {
                        "count_seconds": {"max": 0.004, "max_over_mean": 2.0},
                        "merge_steps": {"max_over_mean": 2.5},
                    },
                    "misra_gries": {
                        "count_seconds": {"max": 0.003, "max_over_mean": 1.4},
                    },
                    "skew_improvement_max_over_mean": 1.43,
                }
            ],
        }
        current = copy.deepcopy(doc)
        current["runs"][0]["misra_gries"]["count_seconds"]["max_over_mean"] = 1.8
        summary = bench_diff.diff_documents(doc, current)
        assert summary["failed"] is True
        assert bench_diff.diff_documents(doc, doc)["failed"] is False

    def test_imbalance_v2_gates_degree_strategy(self, bench_diff):
        doc = {
            "schema": "repro-bench-imbalance/2",
            "runs": [
                {
                    "graph": "wikipedia",
                    "count": 1368,
                    "counts_match": True,
                    "counts_match_degree": True,
                    "baseline": {
                        "count_seconds": {"max": 0.004, "max_over_mean": 2.14},
                        "merge_steps": {"max_over_mean": 2.5},
                    },
                    "misra_gries": {
                        "count_seconds": {"max": 0.003, "max_over_mean": 1.4},
                    },
                    "degree": {
                        "count_seconds": {"max_over_mean": 2.12},
                        "edges_routed": {
                            "max_over_mean": 2.12, "p99_over_p50": 2.24,
                        },
                    },
                    "skew_improvement_max_over_mean": 1.53,
                    "skew_improvement_degree": 1.01,
                }
            ],
        }
        assert bench_diff.diff_documents(doc, doc)["failed"] is False

        # a degree-side skew regression beyond threshold is a hard failure
        worse = copy.deepcopy(doc)
        worse["runs"][0]["degree"]["edges_routed"]["p99_over_p50"] = 2.6
        assert bench_diff.diff_documents(doc, worse)["failed"] is True

        # a degree-count mismatch (exact metric flips True -> False) fails
        broken = copy.deepcopy(doc)
        broken["runs"][0]["counts_match_degree"] = False
        assert bench_diff.diff_documents(doc, broken)["failed"] is True

        # a shrinking improvement factor only warns, never fails
        flat = copy.deepcopy(doc)
        flat["runs"][0]["skew_improvement_degree"] = 0.9
        summary = bench_diff.diff_documents(doc, flat)
        assert summary["failed"] is False
        assert any("skew_improvement_degree" in w for w in summary["warnings"])


class TestCli:
    def test_exit_codes_and_summary_artifact(
        self, bench_diff, telemetry_doc, tmp_path
    ):
        base = tmp_path / "base.json"
        base.write_text(json.dumps(telemetry_doc))
        regressed = copy.deepcopy(telemetry_doc)
        for run in regressed["runs"]:
            run["phases"]["triangle_count"] *= 1.20
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps(regressed))
        out = tmp_path / "summary.json"

        assert bench_diff.main([str(base), str(base)]) == 0
        assert bench_diff.main([str(base), str(cur), "--out", str(out)]) == 1
        summary = json.loads(out.read_text())
        assert summary["schema"] == "repro-bench-diff/1"
        assert summary["failed"] is True
        # a loose threshold lets the same regression through
        assert bench_diff.main([str(base), str(cur), "--threshold", "0.5"]) == 0

    def test_render_summary_mentions_regressions(self, bench_diff, telemetry_doc):
        current = copy.deepcopy(telemetry_doc)
        current["runs"][0]["phases"]["setup"] *= 2.0
        summary = bench_diff.diff_documents(telemetry_doc, current)
        text = bench_diff.render_summary(summary)
        assert "REGRESSION" in text
        assert "hard failures" in text


class TestCommittedBaselines:
    """The baselines shipped in-repo must be self-consistent with the gate."""

    @pytest.mark.parametrize(
        "name", ["BENCH_telemetry.json", "BENCH_ingest.json", "BENCH_imbalance.json"]
    )
    def test_baseline_diffs_clean_against_itself(self, bench_diff, name):
        path = BASELINE_DIR / name
        doc = json.loads(path.read_text())
        summary = bench_diff.diff_documents(doc, doc)
        assert summary["failed"] is False
        assert summary["entries"], f"{name}: gate compared no metrics"


class TestHistoryTrendExtension:
    """--history: the point gate extended to trajectory-vs-history."""

    def test_current_run_is_appended_to_history(
        self, bench_diff, telemetry_doc, tmp_path
    ):
        from repro.observability.history import RunHistory

        base = tmp_path / "base.json"
        base.write_text(json.dumps(telemetry_doc))
        db = tmp_path / "history.db"
        assert bench_diff.main([str(base), str(base), "--history", str(db)]) == 0
        assert bench_diff.main([str(base), str(base), "--history", str(db)]) == 0
        with RunHistory(db) as history:
            assert history.num_runs() == 2 * len(telemetry_doc["runs"])

    def test_trend_failure_fails_gate_even_when_point_diff_passes(
        self, bench_diff, telemetry_doc, tmp_path
    ):
        """Slow drift: each run passes the point diff, the trajectory fails."""
        from repro.observability.history import RunHistory

        db = tmp_path / "history.db"
        with RunHistory(db) as history:
            for _ in range(6):
                history.ingest(telemetry_doc, source="seeded")
        drifted = copy.deepcopy(telemetry_doc)
        for run in drifted["runs"]:
            run["phases"]["triangle_count"] *= 1.20
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        # Point diff sees cur-vs-cur (clean); only the history knows better.
        base.write_text(json.dumps(drifted))
        cur.write_text(json.dumps(drifted))
        out = tmp_path / "summary.json"
        rc = bench_diff.main(
            [str(base), str(cur), "--history", str(db), "--out", str(out)]
        )
        assert rc == 1
        summary = json.loads(out.read_text())
        assert summary["trend"]["failed"] is True
        assert any(
            "triangle_count" in line for line in summary["trend"]["failures"]
        )

    def test_young_history_stays_warn_only(
        self, bench_diff, telemetry_doc, tmp_path
    ):
        from repro.observability.history import RunHistory

        db = tmp_path / "history.db"
        with RunHistory(db) as history:
            history.ingest(telemetry_doc, source="seeded")
        drifted = copy.deepcopy(telemetry_doc)
        for run in drifted["runs"]:
            run["phases"]["triangle_count"] *= 1.20
        base = tmp_path / "base.json"
        base.write_text(json.dumps(drifted))
        rc = bench_diff.main(
            [str(base), str(base), "--history", str(db), "--trend-min-runs", "5"]
        )
        assert rc == 0
