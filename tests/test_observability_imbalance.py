"""Per-DPU imbalance ledger: skew stats, straggler attribution, invisibility.

The load-bearing assertions reproduce the paper's straggler story on
synthetic graphs with a known hot vertex: the DPU holding the hub tops the
straggler table, and enabling the Misra-Gries remap strictly reduces the
max/mean skew of the counting phase.  A separate test pins the observation-
only contract: disabling ledger collection changes no simulated number.
"""

from __future__ import annotations

import json
from unittest import mock

import numpy as np
import pytest

from repro.core.api import PimTriangleCounter
from repro.graph.coo import COOGraph
from repro.graph.generators import erdos_renyi
from repro.observability import (
    ImbalanceLedger,
    SKEW_METRICS,
    render_imbalance_report,
    imbalance_heatmap_svg,
    skew_stats,
)
from repro.telemetry import Telemetry
from repro.testing.strategies import make_case


def hub_graph(
    hub_degree: int = 120, noise_edges: int = 300, seed: int = 0
) -> tuple[COOGraph, int]:
    """A planted heavy hitter: one hub wired to everything plus ER noise.

    Returns (graph, hub_id).  The hub's forward adjacency dominates every
    core it lands on — exactly the shape the Misra-Gries remap targets.
    """
    rng = np.random.default_rng(seed)
    n = hub_degree + 1
    hub = 0
    src = [np.zeros(hub_degree, dtype=np.int64)]
    dst = [np.arange(1, n, dtype=np.int64)]
    noise = erdos_renyi(n, noise_edges, rng)
    src.append(noise.src)
    dst.append(noise.dst)
    g = COOGraph(
        src=np.concatenate(src),
        dst=np.concatenate(dst),
        num_nodes=n,
        name="hub",
    ).canonicalize()
    return g, hub


class TestSkewStats:
    def test_uniform_vector_is_balanced(self):
        s = skew_stats(np.full(16, 7.0))
        assert s.max_over_mean == pytest.approx(1.0)
        assert s.p99_over_p50 == pytest.approx(1.0)
        assert s.cv == pytest.approx(0.0)

    def test_single_hot_entry_shows_up(self):
        values = np.ones(20)
        values[3] = 21.0
        s = skew_stats(values)
        assert s.max == 21.0
        assert s.max_over_mean == pytest.approx(21.0 / 2.0)
        assert s.cv > 1.0

    def test_empty_and_zero_vectors_define_ratios_as_one(self):
        for vec in (np.empty(0), np.zeros(8)):
            s = skew_stats(vec)
            assert s.max_over_mean == 1.0
            assert s.p99_over_p50 == 1.0
            assert s.cv == 0.0


class TestLedgerCollection:
    @pytest.fixture(scope="class")
    def run(self):
        g, hub = hub_graph()
        result = PimTriangleCounter(num_colors=4, seed=1).count(g)
        return g, hub, result

    def test_ledger_attached_and_shaped(self, run):
        _, _, result = run
        ledger = result.imbalance
        assert isinstance(ledger, ImbalanceLedger)
        assert ledger.num_dpus == result.num_dpus
        assert ledger.triplets.shape == (ledger.num_dpus, 3)
        for metric in SKEW_METRICS:
            assert ledger.column(metric).shape == (ledger.num_dpus,)

    def test_routed_edges_cover_every_stored_edge(self, run):
        _, _, result = run
        ledger = result.imbalance
        assert np.all(ledger.edges_stored <= ledger.edges_routed)
        assert int(ledger.edges_routed.sum()) > 0

    def test_hub_dpu_tops_the_straggler_table(self, run):
        """The paper's diagnosis: the core holding the hot vertex straggles."""
        _, hub, result = run
        ledger = result.imbalance
        top = ledger.stragglers(metric="count_seconds", k=1)[0]
        assert top["heavy_node"] == hub
        assert top["heavy_node_multiplicity"] > 1
        assert top["share"] > 1.0 / ledger.num_dpus

    def test_count_skew_is_visible_on_hub_graph(self, run):
        _, _, result = run
        s = result.imbalance.skew("count_seconds")
        assert s.max_over_mean > 1.1
        assert s.cv > 0.1

    def test_unknown_metric_raises(self, run):
        _, _, result = run
        with pytest.raises(KeyError):
            result.imbalance.column("nope")

    def test_powerlaw_family_ledger_is_consistent(self):
        case = make_case("powerlaw", np.random.default_rng(5))
        result = PimTriangleCounter(num_colors=3, seed=2).count(case.graph)
        ledger = result.imbalance
        s = ledger.skew("edges_routed")
        assert s.max_over_mean >= 1.0
        assert np.isfinite(s.cv)
        doc = json.loads(json.dumps(ledger.to_dict()))
        assert doc["num_dpus"] == ledger.num_dpus
        assert len(doc["per_dpu"]["edges_routed"]) == ledger.num_dpus


class TestMisraGriesReducesSkew:
    def test_remap_strictly_reduces_max_over_mean(self):
        g, hub = hub_graph()
        base = PimTriangleCounter(num_colors=4, seed=1).count(g)
        remapped = PimTriangleCounter(
            num_colors=4, seed=1, misra_gries_k=64, misra_gries_t=8
        ).count(g)
        assert remapped.count == base.count
        base_skew = base.imbalance.skew("count_seconds").max_over_mean
        mg_skew = remapped.imbalance.skew("count_seconds").max_over_mean
        assert mg_skew < base_skew

    def test_remapped_flag_set_on_hub_straggler(self):
        g, hub = hub_graph()
        remapped = PimTriangleCounter(
            num_colors=4, seed=1, misra_gries_k=64, misra_gries_t=8
        ).count(g)
        rows = remapped.imbalance.stragglers(metric="edges_routed", k=4)
        assert any(r["heavy_node_remapped"] for r in rows)


class TestObservationOnly:
    def test_collection_is_invisible_to_simulated_state(self):
        """Disabling the harvest changes no count, clock, trace, or metric."""
        g, _ = hub_graph(hub_degree=60, noise_edges=150)

        def run(disabled: bool):
            telemetry = Telemetry(detail=True)
            counter = PimTriangleCounter(num_colors=4, seed=3, telemetry=telemetry)
            if disabled:
                with mock.patch(
                    "repro.observability.imbalance.collect_ledger",
                    return_value=None,
                ):
                    result = counter.count(g)
            else:
                result = counter.count(g)
            return result, telemetry

        on, tel_on = run(disabled=False)
        off, tel_off = run(disabled=True)
        assert on.imbalance is not None and off.imbalance is None
        assert on.count == off.count
        assert np.array_equal(on.per_dpu_counts, off.per_dpu_counts)
        assert on.clock.phases == off.clock.phases
        assert [
            (e.kind, e.seconds, e.payload_bytes) for e in on.trace.events
        ] == [(e.kind, e.seconds, e.payload_bytes) for e in off.trace.events]
        assert tel_on.metrics.snapshot() == tel_off.metrics.snapshot()

    def test_batched_ingest_also_harvests(self):
        g, _ = hub_graph(hub_degree=60, noise_edges=150)
        mono = PimTriangleCounter(num_colors=4, seed=3).count(g)
        batched = PimTriangleCounter(num_colors=4, seed=3, batch_edges=100).count(g)
        assert batched.imbalance is not None
        assert batched.count == mono.count
        assert np.array_equal(
            batched.imbalance.edges_routed, mono.imbalance.edges_routed
        )


class TestRendering:
    @pytest.fixture(scope="class")
    def ledger(self):
        g, _ = hub_graph()
        return PimTriangleCounter(num_colors=4, seed=1).count(g).imbalance

    def test_text_report_contains_skew_and_stragglers(self, ledger):
        text = render_imbalance_report(ledger, top_k=3)
        assert "max/mean" in text
        assert "stragglers" in text
        for metric in SKEW_METRICS:
            assert metric in text
        # one line per straggler row
        assert len([l for l in text.splitlines() if l.strip().startswith(tuple("0123456789"))]) >= 3

    def test_heatmap_svg_renders_rows(self, ledger):
        svg = imbalance_heatmap_svg(ledger)
        assert svg.startswith("<svg")
        assert "count_seconds" in svg
        assert "DPU id" in svg
