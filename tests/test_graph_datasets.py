"""Dataset analogues: registry behaviour and defining structural properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.graph.datasets import DATASET_NAMES, dataset_info, get_dataset
from repro.graph.stats import compute_stats, degree_stats
from repro.graph.triangles import count_triangles


class TestRegistry:
    def test_names_match_paper_table1(self):
        assert DATASET_NAMES == (
            "kronecker23",
            "kronecker24",
            "v1r",
            "livejournal",
            "orkut",
            "humanjung",
            "wikipedia",
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            get_dataset("nonexistent")

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigurationError):
            get_dataset("v1r", tier="huge")

    def test_caching_returns_same_object(self):
        assert get_dataset("v1r", "tiny") is get_dataset("v1r", "tiny")

    def test_deterministic_build(self):
        from repro.graph import datasets

        g1 = get_dataset("orkut", "tiny")
        datasets.clear_cache()
        g2 = get_dataset("orkut", "tiny")
        np.testing.assert_array_equal(g1.src, g2.src)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_info_strings(self, name):
        paper, prop = dataset_info(name)
        assert paper and prop


class TestStructuralProperties:
    """Each analogue must preserve its paper graph's defining property."""

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_canonical_and_nonempty(self, name):
        g = get_dataset(name, "tiny")
        assert g.is_canonical()
        assert g.num_edges > 100

    def test_v1r_few_triangles_low_degree(self):
        g = get_dataset("v1r", "tiny")
        assert count_triangles(g) < 100
        max_deg, _ = degree_stats(g)
        assert max_deg <= 8  # paper: max degree 8

    def test_wikipedia_extreme_hub(self):
        g = get_dataset("wikipedia", "tiny")
        max_deg, avg_deg = degree_stats(g)
        assert max_deg > 50 * avg_deg  # paper: 3M vs 12 avg

    def test_humanjung_densest_and_most_clustered(self):
        stats = {n: compute_stats(get_dataset(n, "tiny")) for n in DATASET_NAMES}
        hj = stats["humanjung"]
        assert hj.avg_degree == max(s.avg_degree for s in stats.values())
        assert hj.global_clustering == max(s.global_clustering for s in stats.values())

    def test_kronecker_scales_nest(self):
        k23 = get_dataset("kronecker23", "tiny")
        k24 = get_dataset("kronecker24", "tiny")
        assert k24.num_edges > k23.num_edges

    def test_high_degree_graphs_separated(self):
        """Paper Table 2: kron/wikipedia max degree an order above the rest."""
        high = {"kronecker23", "kronecker24", "wikipedia"}
        degs = {n: degree_stats(get_dataset(n, "tiny"))[0] for n in DATASET_NAMES}
        hub_min = min(degs[n] for n in high)
        other_max = max(degs[n] for n in DATASET_NAMES if n not in high)
        # wikipedia alone must dominate by 5x; the group by ~1.1x at tiny scale.
        assert degs["wikipedia"] > 5 * other_max
        assert hub_min > other_max

    def test_social_graphs_clustered(self):
        for name in ("livejournal", "orkut"):
            stats = compute_stats(get_dataset(name, "tiny"))
            assert stats.global_clustering > 0.02
