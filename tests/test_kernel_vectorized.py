"""The ``fastvec`` kernel: searchsorted count arithmetic, identical charges.

The vectorized kernel (:mod:`repro.core.kernel_tc_vec`) swaps only the count
hook inside :func:`repro.core.kernel_tc_fast.fast_count`; everything below —
counts on every graph family, the full per-tasklet cost vectors, the golden
hand-computed charges, the duplicate-edge multiplicity semantics, and the
chunked hub-expansion path — must be bit-identical to the ``fast`` kernel.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.kernel_tc_fast import KernelCosts, fast_count, _count_forward_sparse
from repro.core.kernel_tc_vec import (
    VecTriangleCountKernel,
    count_forward_searchsorted,
    vec_count,
)
from repro.core.orient import orient_and_sort
from repro.core.region_index import build_region_index, expand_slices
from repro.testing.strategies import graph_cases

# The worked sample from docs/algorithm.md (test_kernel_cost_golden.py):
# 6 nodes, 8 edges, 2 triangles.
GOLDEN_EDGES = [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5), (1, 5)]


@pytest.fixture
def golden_sample():
    src = np.array([e[0] for e in GOLDEN_EDGES], dtype=np.int64)
    dst = np.array([e[1] for e in GOLDEN_EDGES], dtype=np.int64)
    return src, dst


def assert_results_identical(a, b):
    """Every field of two FastCountResults, bit for bit."""
    assert a.triangles == b.triangles
    assert a.edges == b.edges
    assert a.regions == b.regions
    assert a.merge_steps_charged == b.merge_steps_charged
    assert a.binary_searches == b.binary_searches
    assert a.sort_mram_bytes == b.sort_mram_bytes
    assert np.array_equal(a.per_tasklet_instr, b.per_tasklet_instr)
    assert np.array_equal(a.per_tasklet_dma_bytes, b.per_tasklet_dma_bytes)
    assert np.array_equal(a.per_tasklet_dma_requests, b.per_tasklet_dma_requests)


class TestGoldenCosts:
    """The hand-computed charges of the worked sample, unchanged by fastvec."""

    def test_count_and_merge_steps(self, golden_sample):
        res = vec_count(*golden_sample, num_nodes=6)
        assert res.triangles == 2
        assert res.merge_steps_charged == 12
        assert res.binary_searches == 8
        assert res.regions == 5

    def test_instruction_total(self, golden_sample):
        # Same 520.0 as fast_count: per-edge 256 + merge 60 + balanced 204.
        res = vec_count(*golden_sample, num_nodes=6)
        assert float(res.per_tasklet_instr.sum()) == pytest.approx(520.0)

    def test_identical_to_fast_everywhere(self, golden_sample):
        assert_results_identical(
            fast_count(*golden_sample, num_nodes=6),
            vec_count(*golden_sample, num_nodes=6),
        )

    def test_identical_under_custom_costs(self, golden_sample):
        costs = KernelCosts(edge_bytes=16, edge_buffer_bytes=64, merge_instr_per_step=9.0)
        assert_results_identical(
            fast_count(*golden_sample, num_nodes=6, costs=costs, num_tasklets=4),
            vec_count(*golden_sample, num_nodes=6, costs=costs, num_tasklets=4),
        )


class TestIntersectionEdgeCases:
    """Targeted shapes where a searchsorted intersection can go wrong."""

    def test_empty_sample(self):
        res = vec_count(np.empty(0, np.int64), np.empty(0, np.int64), 5)
        assert res.triangles == 0 and res.edges == 0

    def test_single_edge_rows(self):
        # A path: every adjacency row has exactly one entry, no triangles.
        src = np.arange(6, dtype=np.int64)
        dst = src + 1
        assert_results_identical(
            fast_count(src, dst, 7), vec_count(src, dst, 7)
        )
        assert vec_count(src, dst, 7).triangles == 0

    def test_empty_adjacency_lookups(self):
        # Star from node 0: every dst is a leaf with empty forward adjacency.
        leaves = 20
        src = np.zeros(leaves, dtype=np.int64)
        dst = np.arange(1, leaves + 1, dtype=np.int64)
        assert vec_count(src, dst, leaves + 1).triangles == 0

    def test_duplicate_heavy_stream(self):
        """Duplicate edges multiply triangle contributions; the searchsorted
        left/right multiplicity count must match the sparse product exactly.
        A triangle with each edge doubled counts 2*2*2 = 8 ways."""
        src = np.array([0, 0, 1, 1, 0, 0], dtype=np.int64)
        dst = np.array([1, 1, 2, 2, 2, 2], dtype=np.int64)
        a = fast_count(src, dst, 3)
        b = vec_count(src, dst, 3)
        assert a.triangles == b.triangles == 8

    def test_duplicate_fuzz_matches_sparse(self):
        rng = np.random.default_rng(42)
        for _ in range(50):
            n = int(rng.integers(3, 20))
            m = int(rng.integers(1, 80))
            # Tiny ID range: lots of duplicates and self-loops by design.
            src = rng.integers(0, n, m)
            dst = rng.integers(0, n, m)
            assert_results_identical(
                fast_count(src, dst, n), vec_count(src, dst, n)
            )

    def test_all_mono_triangles_single_color(self):
        """C=1 and C=2 pipelines route every triangle through the mono path;
        the kernel sees whole (or near-whole) graphs."""
        from repro.core.api import PimTriangleCounter
        from repro.graph.generators import erdos_renyi

        g = erdos_renyi(60, 400, np.random.default_rng(5)).canonicalize()
        for colors in (1, 2):
            merge = PimTriangleCounter(num_colors=colors, seed=0).count(g)
            vec = PimTriangleCounter(
                num_colors=colors, seed=0, kernel_variant="fastvec"
            ).count(g)
            assert vec.count == merge.count
            assert dict(vec.clock.phases) == dict(merge.clock.phases)

    def test_hub_rows_longer_than_chunk(self):
        """A hub whose adjacency slice exceeds the expansion chunk forces the
        multi-chunk path; counts must not change with the chunk size."""
        n = 120
        hub_src = np.zeros(n - 1, dtype=np.int64)
        hub_dst = np.arange(1, n, dtype=np.int64)
        # Ring among the leaves creates wedges through the hub's big row.
        ring_src = np.arange(1, n - 1, dtype=np.int64)
        ring_dst = ring_src + 1
        u, v, _ = orient_and_sort(
            np.concatenate([hub_src, ring_src]), np.concatenate([hub_dst, ring_dst])
        )
        expected = _count_forward_sparse(u, v, n)
        for chunk in (1, 7, 64, 1 << 22):
            got = count_forward_searchsorted(u, v, n, chunk_candidates=chunk)
            assert got == expected

    def test_expand_slices_flattens_spans(self):
        starts = np.array([2, 5, 5, 9], dtype=np.int64)
        ends = np.array([4, 5, 8, 10], dtype=np.int64)
        positions, owner = expand_slices(starts, ends)
        assert positions.tolist() == [2, 3, 5, 6, 7, 9]
        assert owner.tolist() == [0, 0, 2, 2, 2, 3]

    def test_expand_slices_empty(self):
        positions, owner = expand_slices(
            np.array([3, 7], dtype=np.int64), np.array([3, 7], dtype=np.int64)
        )
        assert positions.size == 0 and owner.size == 0


class TestPropertyParity:
    """Hypothesis sweep over the seeded graph families."""

    @given(case=graph_cases())
    @settings(max_examples=40, deadline=None)
    def test_counts_and_charges_match_fast(self, case):
        g = case.graph
        a = fast_count(g.src, g.dst, g.num_nodes)
        b = vec_count(g.src, g.dst, g.num_nodes)
        assert_results_identical(a, b)
        if case.exact is not None:
            assert b.triangles == case.exact

    @given(case=graph_cases())
    @settings(max_examples=25, deadline=None)
    def test_raw_streams_match_sparse_counter(self, case):
        # The raw (uncanonicalized) stream exercises duplicates/self-loops
        # through orient_and_sort on the adversarial family.
        g = case.raw
        assert_results_identical(
            fast_count(g.src, g.dst, g.num_nodes),
            vec_count(g.src, g.dst, g.num_nodes),
        )


class TestKernelObject:
    def test_keeps_trace_compatible_name(self):
        # The trace recorder embeds kernel.name in load/launch events; the
        # vectorized kernel must be indistinguishable there.
        kernel = VecTriangleCountKernel(num_nodes=10)
        assert kernel.name == "triangle_count"

    def test_counter_hook_is_searchsorted(self):
        assert VecTriangleCountKernel(num_nodes=10)._counter() is count_forward_searchsorted

    def test_pipeline_rejects_unknown_variant(self):
        from repro.common.errors import ConfigurationError
        from repro.core.host import PimTcOptions

        with pytest.raises(ConfigurationError):
            PimTcOptions(num_colors=2, kernel_variant="fastervec")

    def test_pipeline_accepts_fastvec(self):
        from repro.core.host import PimTcOptions

        assert PimTcOptions(num_colors=2, kernel_variant="fastvec").kernel_variant == "fastvec"
