"""TcResult derived metrics: phases, throughput, load balance."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PimTriangleCounter
from repro.core.result import TcResult
from repro.pimsim.kernel import SimClock


def make_result(**overrides) -> TcResult:
    clock = SimClock()
    clock.advance("setup", 0.010)
    clock.advance("sample_creation", 0.002)
    clock.advance("triangle_count", 0.003)
    defaults = dict(
        estimate=100.0,
        num_colors=3,
        num_dpus=10,
        clock=clock,
        per_dpu_counts=np.array([10] * 10),
        reservoir_scales=np.ones(10),
        edges_routed=np.array([30] * 10),
        edges_input=100,
    )
    defaults.update(overrides)
    return TcResult(**defaults)


class TestDerivedMetrics:
    def test_count_rounds(self):
        assert make_result(estimate=99.6).count == 100

    def test_is_exact_flags(self):
        assert make_result().is_exact
        assert not make_result(uniform_p=0.5).is_exact
        assert not make_result(reservoir_scales=np.full(10, 0.5)).is_exact

    def test_phase_accessors(self):
        r = make_result()
        assert r.setup_seconds == pytest.approx(0.010)
        assert r.seconds_without_setup == pytest.approx(0.005)
        assert r.total_seconds == pytest.approx(0.015)

    def test_throughput(self):
        r = make_result()
        assert r.throughput_edges_per_ms() == pytest.approx(100 / 5.0)

    def test_load_balance_even(self):
        assert make_result().load_balance() == pytest.approx(1.0)

    def test_load_balance_skewed(self):
        routed = np.array([60] + [20] * 9)
        r = make_result(edges_routed=routed)
        assert r.load_balance() == pytest.approx(60 / routed.mean())

    def test_load_balance_empty(self):
        r = make_result(edges_routed=np.zeros(10, dtype=np.int64))
        assert r.load_balance() == 1.0


class TestLoadBalanceFromPipeline:
    def test_load_balance_matches_class_structure(self, rngs):
        """Sec. 3.1: at C=2 the class structure predicts max/mean = 3N / 2N
        = 1.5 (plus hash noise); and the ratio stays bounded for larger C —
        the coloring never concentrates the load on a few cores."""
        from repro.graph.generators import erdos_renyi

        g = erdos_renyi(3000, 60_000, rngs.stream("lb")).canonicalize()
        lb2 = PimTriangleCounter(num_colors=2, seed=1).count(g).load_balance()
        assert 1.4 < lb2 < 1.8
        for c in (4, 8, 12):
            lb = PimTriangleCounter(num_colors=c, seed=1).count(g).load_balance()
            assert lb < 3.0


class TestToDict:
    def test_json_serializable(self, small_graph):
        import json

        result = PimTriangleCounter(num_colors=3, seed=1).count(small_graph)
        payload = result.to_dict()
        text = json.dumps(payload)
        back = json.loads(text)
        assert back["count"] == result.count
        assert back["is_exact"] is True
        assert set(back["phases"]) == {"setup", "sample_creation", "triangle_count"}
        assert back["kernel"]["instructions"] > 0

    def test_meta_tuple_survives(self, small_graph):
        result = (
            PimTriangleCounter(num_colors=3, seed=1, misra_gries_k=32, misra_gries_t=2)
            .count(small_graph)
        )
        assert result.to_dict()["meta"]["misra_gries"] == (32, 2)
