"""Synthetic generators: structural properties of each dataset analogue."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.graph.generators import (
    barabasi_albert,
    dense_community,
    erdos_renyi,
    grid_with_diagonals,
    hub_graph,
    rmat,
    triadic_closure,
)
from repro.graph.stats import compute_stats, degree_stats
from repro.graph.triangles import count_triangles


class TestRmat:
    def test_shape(self, rng):
        g = rmat(8, 4, rng)
        assert g.num_nodes == 256
        assert g.num_edges == 4 * 256

    def test_deterministic(self, rngs):
        a = rmat(7, 4, rngs.stream("r"))
        b = rmat(7, 4, rngs.stream("r"))
        np.testing.assert_array_equal(a.src, b.src)

    def test_power_law_hubs(self, rng):
        """The canonical RMAT parameters give a hub far above the mean degree."""
        g = rmat(10, 16, rng).canonicalize()
        max_deg, avg_deg = degree_stats(g)
        assert max_deg > 8 * avg_deg

    def test_rejects_bad_probs(self, rng):
        with pytest.raises(ConfigurationError):
            rmat(4, 2, rng, a=0.5, b=0.4, c=0.4)


class TestErdosRenyi:
    def test_exact_edge_count(self, rng):
        g = erdos_renyi(100, 500, rng)
        assert g.num_edges == 500
        assert g.is_canonical()

    def test_rejects_impossible_m(self, rng):
        with pytest.raises(ConfigurationError):
            erdos_renyi(4, 100, rng)

    def test_zero_edges(self, rng):
        assert erdos_renyi(10, 0, rng).num_edges == 0


class TestBarabasiAlbert:
    def test_edge_count(self, rng):
        g = barabasi_albert(200, 3, rng)
        assert g.num_edges == (200 - 3) * 3

    def test_heavy_tail(self, rng):
        g = barabasi_albert(2000, 4, rng).canonicalize()
        max_deg, avg_deg = degree_stats(g)
        assert max_deg > 5 * avg_deg

    def test_rejects_attach_ge_n(self, rng):
        with pytest.raises(ConfigurationError):
            barabasi_albert(3, 3, rng)


class TestTriadicClosure:
    def test_increases_clustering(self, rng):
        base = barabasi_albert(400, 3, rng).canonicalize()
        closed = triadic_closure(base, 800, rng)
        gcc_base = compute_stats(base).global_clustering
        gcc_closed = compute_stats(closed).global_clustering
        assert gcc_closed > gcc_base

    def test_zero_extra_is_identity(self, rng, small_graph):
        out = triadic_closure(small_graph, 0, rng)
        assert out.num_edges == small_graph.num_edges

    def test_stays_canonical(self, rng, small_graph):
        assert triadic_closure(small_graph, 50, rng).is_canonical()


class TestGridWithDiagonals:
    def test_plain_grid_triangle_free(self, rng):
        g = grid_with_diagonals(12, 12, 0, rng).canonicalize()
        assert count_triangles(g) == 0

    def test_diagonals_plant_triangles(self, rng):
        g = grid_with_diagonals(20, 20, 25, rng).canonicalize()
        tri = count_triangles(g)
        assert 25 <= tri <= 60  # one or two unit squares per diagonal

    def test_max_degree_bounded(self, rng):
        g = grid_with_diagonals(15, 15, 30, rng).canonicalize()
        max_deg, _ = degree_stats(g)
        assert max_deg <= 6


class TestHubGraph:
    def test_hub_dominates(self, rng):
        g = hub_graph(2000, 2000, 2, 900, rng).canonicalize()
        max_deg, avg_deg = degree_stats(g)
        assert max_deg >= 800
        assert max_deg > 50 * avg_deg

    def test_rejects_hub_degree_ge_n(self, rng):
        with pytest.raises(ConfigurationError):
            hub_graph(10, 5, 1, 10, rng)


class TestDenseCommunity:
    def test_high_density_and_clustering(self, rng):
        g = dense_community(300, 60, 0.5, rng).canonicalize()
        stats = compute_stats(g)
        assert stats.avg_degree > 20
        assert stats.global_clustering > 0.3

    def test_max_degree_capped_by_windows(self, rng):
        g = dense_community(400, 50, 0.5, rng).canonicalize()
        max_deg, _ = degree_stats(g)
        # A node sees at most ~2 overlapping windows of 50.
        assert max_deg < 100
