"""Misra-Gries top-t ID remapping (paper Sec. 3.5)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.orient import orient_and_sort
from repro.core.region_index import build_region_index
from repro.core.remap import RemapTable, apply_remap
from repro.graph.coo import COOGraph
from repro.graph.generators import hub_graph
from repro.graph.triangles import count_triangles

from conftest import graph_strategy


class TestRemapTable:
    def test_new_ids_most_frequent_highest(self):
        table = RemapTable(nodes=np.array([7, 3, 9]), num_nodes=10)
        # nodes[0]=7 is most frequent -> highest new ID 12.
        assert table.new_ids().tolist() == [12, 11, 10]

    def test_remapped_range(self):
        table = RemapTable(nodes=np.array([1, 2]), num_nodes=5)
        assert table.remapped_num_nodes == 7

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            RemapTable(nodes=np.array([1, 1]), num_nodes=4)

    def test_nbytes(self):
        assert RemapTable(nodes=np.array([1, 2, 3]), num_nodes=4).nbytes() == 24


class TestApplyRemap:
    def test_empty_table_identity(self):
        table = RemapTable(nodes=np.array([], dtype=np.int64), num_nodes=4)
        src = np.array([0, 1])
        out_src, _ = apply_remap(table, src, src)
        np.testing.assert_array_equal(out_src, src)

    def test_only_table_nodes_rewritten(self):
        table = RemapTable(nodes=np.array([2]), num_nodes=5)
        src, dst = apply_remap(table, np.array([0, 2, 4]), np.array([2, 3, 2]))
        assert src.tolist() == [0, 5, 4]
        assert dst.tolist() == [5, 3, 5]

    def test_inputs_untouched(self):
        table = RemapTable(nodes=np.array([0]), num_nodes=3)
        src = np.array([0, 1])
        apply_remap(table, src, src)
        assert src.tolist() == [0, 1]

    @settings(max_examples=30, deadline=None)
    @given(g=graph_strategy(max_nodes=25, max_edges=90), t=st.integers(1, 6))
    def test_bijection_preserves_triangles(self, g, t):
        deg = g.degrees()
        top = np.argsort(-deg)[:t].astype(np.int64)
        table = RemapTable(nodes=top, num_nodes=g.num_nodes)
        src, dst = apply_remap(table, g.src, g.dst)
        remapped = COOGraph(src, dst, table.remapped_num_nodes)
        assert count_triangles(remapped) == count_triangles(g)

    def test_most_frequent_gets_empty_forward_list(self, rngs):
        """After remap, the hottest node's forward adjacency is empty."""
        g = hub_graph(400, 600, 1, 250, rngs.stream("h")).canonicalize()
        hub = int(np.argmax(g.degrees()))
        table = RemapTable(nodes=np.array([hub]), num_nodes=g.num_nodes)
        src, dst = apply_remap(table, g.src, g.dst)
        u, v, _ = orient_and_sort(src, dst)
        index = build_region_index(u)
        new_hub_id = table.remapped_num_nodes - 1
        assert index.degrees_of(np.array([new_hub_id]))[0] == 0
