"""Telemetry through the full pipeline: clock parity, engine parity, wiring."""

from __future__ import annotations

import pytest

from repro import PimTriangleCounter
from repro.telemetry import PHASE_NAMES, Telemetry


class TestPhaseAttribution:
    def test_phase_span_totals_equal_clock_phases(self, small_graph):
        """The acceptance invariant: span sim totals == SimClock ledger."""
        tel = Telemetry()
        result = PimTriangleCounter(num_colors=3, seed=1, telemetry=tel).count(
            small_graph
        )
        totals = tel.phase_totals()
        assert set(totals) == set(PHASE_NAMES)
        for phase in PHASE_NAMES:
            assert totals[phase] == pytest.approx(
                result.clock.get(phase), rel=1e-12, abs=1e-15
            )

    def test_operation_spans_nest_under_phases(self, small_graph):
        tel = Telemetry()
        PimTriangleCounter(num_colors=3, seed=1, telemetry=tel).count(small_graph)
        for path in (
            "setup/alloc",
            "setup/load_kernel",
            "sample_creation/uniform_sample",
            "sample_creation/partition",
            "sample_creation/scatter",
            "sample_creation/insert",
            "triangle_count/launch",
            "triangle_count/gather",
            "triangle_count/correction",
        ):
            assert tel.find(path) is not None, path

    def test_detail_mode_adds_per_dpu_spans(self, small_graph):
        tel = Telemetry(detail=True)
        counter = PimTriangleCounter(num_colors=3, seed=1, telemetry=tel)
        counter.count(small_graph)
        launch = tel.find("triangle_count/launch")
        assert len(launch.children) == counter.num_dpus
        assert launch.children[0].name == "dpu0"
        # per-DPU sim seconds sum to at least the parent's (parallel overlap)
        assert sum(c.sim_seconds for c in launch.children) >= launch.sim_seconds

    def test_default_detail_off_keeps_tree_small(self, small_graph):
        tel = Telemetry()
        PimTriangleCounter(num_colors=3, seed=1, telemetry=tel).count(small_graph)
        assert tel.find("triangle_count/launch").children == []

    def test_sample_metrics_recorded(self, small_graph):
        tel = Telemetry()
        counter = PimTriangleCounter(num_colors=3, seed=1, telemetry=tel)
        counter.count(small_graph)
        m = tel.metrics
        assert m.get("host.edges_input").value == small_graph.num_edges
        assert m.get("host.edges_kept").value == small_graph.num_edges  # exact path
        routed = m.get("pim.edges_routed")
        assert routed.count == counter.num_dpus
        assert m.get("kernel.instructions").value > 0
        assert m.get("pipeline.runs").value == 1

    def test_disabled_telemetry_is_inert_and_correct(self, small_graph):
        on = PimTriangleCounter(num_colors=3, seed=1, telemetry=Telemetry())
        off = PimTriangleCounter(
            num_colors=3, seed=1, telemetry=Telemetry(enabled=False)
        )
        assert off.count(small_graph).count == on.count(small_graph).count
        assert off.telemetry.root.children == []
        assert off.telemetry.metrics.snapshot() == {}

    def test_pipeline_has_telemetry_by_default(self, triangle_graph):
        counter = PimTriangleCounter(num_colors=2, seed=1)
        result = counter.count(triangle_graph)
        assert result.telemetry is counter.telemetry
        assert counter.telemetry.find("triangle_count") is not None


class TestExecutorParity:
    """Span-tree stitching parity across serial/thread/process (satellite c)."""

    def _run(self, graph, engine):
        tel = Telemetry(detail=True)
        counter = PimTriangleCounter(
            num_colors=3, seed=1, executor=engine, jobs=2, telemetry=tel
        )
        result = counter.count(graph)
        return result, tel

    def test_span_signatures_identical_across_engines(self, small_graph):
        signatures = {}
        for engine in ("serial", "thread", "process"):
            _, tel = self._run(small_graph, engine)
            signatures[engine] = tel.span_signature()
        assert signatures["thread"] == signatures["serial"]
        assert signatures["process"] == signatures["serial"]

    def test_metric_snapshots_bit_identical_across_engines(self, small_graph):
        snapshots = {}
        for engine in ("serial", "thread", "process"):
            _, tel = self._run(small_graph, engine)
            snapshots[engine] = tel.metrics.snapshot()
        assert snapshots["thread"] == snapshots["serial"]
        assert snapshots["process"] == snapshots["serial"]

    def test_worker_wall_metric_is_volatile_only(self, small_graph):
        _, tel = self._run(small_graph, "thread")
        assert "executor.worker_wall_seconds" not in tel.metrics.snapshot()
        assert "executor.worker_wall_seconds" in tel.metrics.snapshot(volatile=True)


class TestResultTraceSummary:
    def test_to_dict_includes_trace_summary(self, small_graph):
        result = PimTriangleCounter(num_colors=3, seed=1).count(small_graph)
        summary = result.to_dict()["trace"]
        assert summary["events"] == len(result.trace)
        assert summary["counts_by_kind"]["launch"] >= 1
        assert summary["total_seconds"] == pytest.approx(
            sum(e.seconds for e in result.trace.events)
        )
        assert summary["total_bytes"] == sum(
            e.payload_bytes for e in result.trace.events
        )

    def test_local_pipeline_records_spans_too(self, small_graph):
        tel = Telemetry()
        counter = PimTriangleCounter(num_colors=3, seed=1, telemetry=tel)
        counter.count_local(small_graph)
        assert tel.find("triangle_count/correction") is not None
        assert set(tel.phase_totals()) == set(PHASE_NAMES)
