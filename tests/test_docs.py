"""Documentation stays honest: link integrity and runnable doc examples.

Runs the same checks as CI's docs job (``tools/check_docs.py``) inside the
tier-1 suite, so a doc-breaking refactor fails locally before CI.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_doc_files_exist():
    files = check_docs.doc_files(REPO_ROOT)
    names = {p.name for p in files}
    # The four cross-linked pages plus the README must all be present.
    assert {"README.md", "architecture.md", "algorithm.md", "cost_model.md",
            "datasets.md"} <= names
    for path in files:
        assert path.exists(), path


@pytest.mark.parametrize("path", check_docs.doc_files(REPO_ROOT),
                         ids=lambda p: p.name)
def test_intra_repo_links_resolve(path):
    assert check_docs.check_links(path, REPO_ROOT) == []


@pytest.mark.parametrize("path", check_docs.doc_files(REPO_ROOT),
                         ids=lambda p: p.name)
def test_doc_doctests_pass(path):
    assert check_docs.check_doctests(path, REPO_ROOT) == []


def test_architecture_has_doctest_coverage():
    """architecture.md ships at least one executable example."""
    text = (REPO_ROOT / "docs" / "architecture.md").read_text(encoding="utf-8")
    blocks = [
        src
        for lang, _, src in check_docs.iter_code_blocks(text)
        if lang in ("python", "pycon", "py") and ">>>" in src
    ]
    assert blocks, "architecture.md should contain a doctest block"
