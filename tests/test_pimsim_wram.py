"""WRAM scratchpad planning."""

from __future__ import annotations

import pytest

from repro.common.errors import WramCapacityError
from repro.common.units import KiB
from repro.pimsim.wram import Wram, WramPlan


class TestWramPlan:
    def test_totals(self):
        plan = WramPlan(per_tasklet_buffers={"a": 512, "b": 256}, shared_bytes=1024)
        assert plan.per_tasklet_total() == 768
        assert plan.total(16) == 1024 + 16 * 768

    def test_fitting_plan_accepted(self):
        wram = Wram(capacity=64 * KiB, num_tasklets=16)
        plan = WramPlan(per_tasklet_buffers={"buf": 2 * KiB}, shared_bytes=4 * KiB)
        wram.apply_plan(plan)
        assert wram.plan is plan

    def test_oversized_plan_rejected(self):
        wram = Wram(capacity=64 * KiB, num_tasklets=16)
        plan = WramPlan(per_tasklet_buffers={"buf": 8 * KiB})  # 128 KiB > 64
        with pytest.raises(WramCapacityError):
            wram.apply_plan(plan)

    def test_buffer_capacity_in_items(self):
        wram = Wram(capacity=64 * KiB, num_tasklets=16)
        wram.apply_plan(WramPlan(per_tasklet_buffers={"edges": 1024}))
        assert wram.buffer_capacity("edges", itemsize=8) == 128

    def test_buffer_query_requires_plan(self):
        wram = Wram(capacity=64 * KiB, num_tasklets=16)
        with pytest.raises(WramCapacityError):
            wram.buffer_bytes("edges")

    def test_paper_kernel_plan_fits_real_wram(self):
        """The production kernel's default plan must fit 64 KiB / 16 tasklets."""
        from repro.core.kernel_tc_fast import KernelCosts, TriangleCountKernel
        from repro.pimsim.config import CostModel, DpuConfig
        from repro.pimsim.dpu import Dpu

        dpu = Dpu(dpu_id=0, config=DpuConfig(), cost=CostModel())
        kernel = TriangleCountKernel(num_nodes=10, costs=KernelCosts())
        dpu.wram.apply_plan(kernel.wram_plan(dpu))
