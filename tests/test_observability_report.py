"""Run-report v2, NDJSON event log, Chrome DPU lanes, CLI imbalance flags."""

from __future__ import annotations

import json

from repro.cli import main
from repro.core.api import PimTriangleCounter
from repro.graph.datasets import get_dataset
from repro.observability import NdjsonLogger, new_run_id
from repro.telemetry import (
    ACCEPTED_RUN_REPORT_SCHEMAS,
    RUN_REPORT_SCHEMA,
    RunReport,
    Telemetry,
    chrome_trace,
    render_profile,
    validate_run_report,
)


def _run(detail: bool = True):
    graph = get_dataset("orkut", "tiny")
    telemetry = Telemetry(detail=detail)
    result = PimTriangleCounter(num_colors=4, seed=0, telemetry=telemetry).count(graph)
    return graph, telemetry, result


class TestRunReportV2:
    def test_schema_bumped_and_accepted(self):
        assert RUN_REPORT_SCHEMA == "repro-run-report/2"
        assert "repro-run-report/1" in ACCEPTED_RUN_REPORT_SCHEMAS
        assert RUN_REPORT_SCHEMA in ACCEPTED_RUN_REPORT_SCHEMAS

    def test_v2_report_round_trips(self):
        graph, _, result = _run()
        run_id = new_run_id()
        report = RunReport.from_result(result, graph=graph, run_id=run_id)
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["schema"] == "repro-run-report/2"
        assert doc["run_id"] == run_id
        assert doc["imbalance"]["num_dpus"] == result.num_dpus
        assert doc["imbalance"]["skew"]["count_seconds"]["max_over_mean"] >= 1.0
        assert doc["imbalance"]["stragglers"], "straggler table must not be empty"
        assert validate_run_report(doc) == []

    def test_v1_documents_still_validate(self):
        graph, _, result = _run()
        doc = RunReport.from_result(result, graph=graph).to_dict()
        doc["schema"] = "repro-run-report/1"
        del doc["imbalance"]
        del doc["run_id"]
        assert validate_run_report(doc) == []

    def test_unknown_schema_and_bad_imbalance_rejected(self):
        graph, _, result = _run()
        doc = RunReport.from_result(result, graph=graph).to_dict()
        bad = dict(doc, schema="repro-run-report/99")
        assert validate_run_report(bad)
        bad = json.loads(json.dumps(doc))
        bad["imbalance"]["skew"]["count_seconds"].pop("max_over_mean")
        assert validate_run_report(bad)
        bad = dict(doc, run_id=42)
        assert validate_run_report(bad)


class TestChromeDpuLanes:
    def test_one_lane_per_dpu_under_simulated_pid(self):
        _, telemetry, result = _run(detail=True)
        events = chrome_trace(telemetry, result.trace)["traceEvents"]
        lane_tids = {
            e["tid"] for e in events if e.get("pid") == 2 and e.get("ph") == "X"
        } - {0}
        assert len(lane_tids) == result.num_dpus
        names = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e["pid"] == 2 and e["name"] == "thread_name"
        }
        assert any(n.startswith("dpu") for n in names)

    def test_no_detail_spans_no_lanes(self):
        _, telemetry, result = _run(detail=False)
        events = chrome_trace(telemetry, result.trace)["traceEvents"]
        lane_tids = {
            e["tid"] for e in events if e.get("pid") == 2 and e.get("ph") == "X"
        } - {0}
        assert lane_tids == set()


class TestProfileStragglers:
    def test_profile_includes_straggler_section(self):
        _, telemetry, result = _run()
        text = render_profile(telemetry, imbalance=result.imbalance)
        assert "per-DPU stragglers" in text
        assert "triplet" in text

    def test_profile_without_ledger_unchanged(self):
        _, telemetry, _ = _run()
        text = render_profile(telemetry)
        assert "per-DPU stragglers" not in text


class TestNdjsonLogger:
    def test_events_share_the_run_id(self, tmp_path):
        path = tmp_path / "events.ndjson"
        with NdjsonLogger(str(path)) as logger:
            logger.event("run_start", graph="g")
            logger.span_hook("start", "pipeline")
            logger.span_hook("end", "pipeline", wall_seconds=0.1, sim_seconds=0.2)
            logger.event("run_end", status="ok")
            run_id = logger.run_id
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["event"] for l in lines] == [
            "run_start",
            "span_start",
            "span_end",
            "run_end",
        ]
        assert {l["run_id"] for l in lines} == {run_id}
        assert all("ts" in l for l in lines)


class TestCliFlags:
    def test_imbalance_flag_prints_report(self, capsys):
        assert (
            main(["dataset:orkut", "--tier", "tiny", "--colors", "4", "--imbalance"])
            == 0
        )
        out = capsys.readouterr().out
        assert "per-DPU load imbalance" in out
        assert "stragglers" in out

    def test_imbalance_svg_written(self, tmp_path, capsys):
        svg = tmp_path / "heat.svg"
        assert (
            main(
                [
                    "dataset:orkut",
                    "--tier",
                    "tiny",
                    "--colors",
                    "4",
                    "--imbalance-svg",
                    str(svg),
                ]
            )
            == 0
        )
        assert svg.read_text().startswith("<svg")

    def test_log_json_matches_metrics_report_run_id(self, tmp_path, capsys):
        log = tmp_path / "events.ndjson"
        report = tmp_path / "report.json"
        assert (
            main(
                [
                    "dataset:orkut",
                    "--tier",
                    "tiny",
                    "--colors",
                    "4",
                    "--log-json",
                    str(log),
                    "--metrics-out",
                    str(report),
                ]
            )
            == 0
        )
        lines = [json.loads(l) for l in log.read_text().splitlines()]
        events = [l["event"] for l in lines]
        assert events[0] == "run_start"
        assert events[-1] == "run_end"
        assert "estimate" in events
        assert "span_start" in events and "span_end" in events
        run_ids = {l["run_id"] for l in lines}
        assert len(run_ids) == 1
        doc = json.loads(report.read_text())
        assert doc["run_id"] == run_ids.pop()
        assert validate_run_report(doc) == []
