"""Dataset regression guard: the tiny-tier analogues are frozen.

EXPERIMENTS.md's bench numbers and every seeded test in this suite depend on
the generators producing bit-identical graphs.  These fingerprints fail
loudly if a generator or a dataset recipe changes — update them (and re-run
the bench tier for EXPERIMENTS.md) only on purpose.
"""

from __future__ import annotations

import zlib

import pytest

from repro.graph.datasets import DATASET_NAMES, get_dataset

#: (edges, nodes-in-range, crc32 of the canonical edge bytes) per tiny dataset.
FINGERPRINTS = {}


def fingerprint(name: str) -> tuple[int, int, int]:
    g = get_dataset(name, "tiny")
    crc = zlib.crc32(g.src.tobytes()) ^ zlib.crc32(g.dst.tobytes())
    return (g.num_edges, g.num_nodes, crc)


# Regenerate by printing fingerprint(name) for every dataset.
FINGERPRINTS = {
    "kronecker23": (2140, 256, 3386527807),
    "kronecker24": (4805, 512, 2179524573),
    "v1r": (3145, 1600, 2097703206),
    "livejournal": (2799, 600, 2949133552),
    "orkut": (3694, 500, 4076494168),
    "humanjung": (7186, 300, 3263844000),
    "wikipedia": (5397, 3000, 1512405597),
}


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_tiny_dataset_frozen(name):
    assert fingerprint(name) == FINGERPRINTS[name], (
        f"{name}: dataset bytes changed — a generator or recipe drifted; "
        "update FINGERPRINTS and regenerate EXPERIMENTS.md deliberately"
    )


def test_stream_order_is_deterministic():
    """The shuffled stream order (reservoir/MG-relevant) is part of the freeze."""
    a = fingerprint("orkut")[2]
    from repro.graph import datasets

    datasets.clear_cache()
    b = fingerprint("orkut")[2]
    assert a == b
