"""Exact triangle oracle vs independent references (networkx, dense, sets)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings

from repro.baselines.reference import count_triangles_dense, count_triangles_sets
from repro.graph.coo import COOGraph
from repro.graph.generators import erdos_renyi
from repro.graph.triangles import (
    count_triangles,
    triangles_per_edge_budget,
    wedge_count,
)

from conftest import graph_strategy


def nx_count(g: COOGraph) -> int:
    G = nx.Graph()
    G.add_nodes_from(range(g.num_nodes))
    G.add_edges_from(g.edges().tolist())
    return sum(nx.triangles(G).values()) // 3


class TestKnownGraphs:
    def test_empty(self):
        assert count_triangles(COOGraph.from_edges([], num_nodes=4)) == 0

    def test_single_triangle(self, triangle_graph):
        assert count_triangles(triangle_graph) == 1

    def test_k4_has_four(self):
        k4 = COOGraph.from_edges(
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], num_nodes=4
        )
        assert count_triangles(k4) == 4

    def test_k5_has_ten(self):
        edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        assert count_triangles(COOGraph.from_edges(edges, num_nodes=5)) == 10

    def test_path_has_none(self):
        path = COOGraph.from_edges([(0, 1), (1, 2), (2, 3)], num_nodes=4)
        assert count_triangles(path) == 0

    def test_star_has_none(self):
        star = COOGraph.from_edges([(0, i) for i in range(1, 9)], num_nodes=9)
        assert count_triangles(star) == 0

    def test_uncanonical_input_ok(self):
        g = COOGraph.from_edges([(1, 0), (2, 1), (0, 2), (2, 0)], num_nodes=3)
        assert count_triangles(g) == 1


class TestAgainstReferences:
    @pytest.mark.parametrize("seed", range(6))
    def test_vs_networkx(self, rngs, seed):
        g = erdos_renyi(70, 400, rngs.stream("er", seed)).canonicalize()
        assert count_triangles(g) == nx_count(g)

    @pytest.mark.parametrize("seed", range(3))
    def test_vs_dense_reference(self, rngs, seed):
        g = erdos_renyi(40, 200, rngs.stream("d", seed)).canonicalize()
        assert count_triangles(g) == count_triangles_dense(g)

    @pytest.mark.parametrize("seed", range(3))
    def test_vs_set_reference(self, rngs, seed):
        g = erdos_renyi(40, 150, rngs.stream("s", seed)).canonicalize()
        assert count_triangles(g) == count_triangles_sets(g)

    @settings(max_examples=40, deadline=None)
    @given(g=graph_strategy(max_nodes=25, max_edges=90))
    def test_property_vs_networkx(self, g):
        assert count_triangles(g) == nx_count(g)

    def test_chunking_does_not_change_result(self, rngs):
        g = erdos_renyi(120, 1500, rngs.stream("chunk")).canonicalize()
        full = count_triangles(g, chunk_wedges=1 << 23)
        tiny_chunks = count_triangles(g, chunk_wedges=64)
        assert full == tiny_chunks


class TestWedges:
    def test_wedge_count_triangle(self, triangle_graph):
        # Degrees 2,2,3,1 -> wedges = 1+1+3+0 = 5.
        assert wedge_count(triangle_graph) == 5

    def test_budget_bounds_wedges(self, small_graph):
        """Degree-ordered budget is at most the total wedge count."""
        assert triangles_per_edge_budget(small_graph) <= wedge_count(small_graph)

    def test_budget_zero_for_empty(self):
        assert triangles_per_edge_budget(COOGraph.from_edges([], num_nodes=2)) == 0

    def test_budget_at_least_triangles(self, small_graph):
        """Each triangle requires at least one wedge check."""
        assert triangles_per_edge_budget(small_graph) >= count_triangles(small_graph)
