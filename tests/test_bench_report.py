"""benchmarks/bench_report.py — the fig3-style telemetry sweep artifact."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

BENCH_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_report.py"


@pytest.fixture(scope="module")
def bench_report():
    spec = importlib.util.spec_from_file_location("bench_report", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_run_sweep_covers_every_tiny_graph(bench_report):
    from repro.experiments.common import paper_graph_order_by_max_degree

    document = bench_report.run_sweep("tiny", seed=0)
    assert document["schema"] == bench_report.BENCH_SCHEMA
    assert [r["graph"] for r in document["runs"]] == list(
        paper_graph_order_by_max_degree("tiny")
    )
    for run in document["runs"]:
        assert set(run["phases"]) == {"setup", "sample_creation", "triangle_count"}
        assert run["count"] >= 0
        assert run["wall_seconds"] > 0
        assert "pim.edges_routed" in run["metrics"]
        assert [s["path"] for s in run["spans"]] == [
            "setup", "sample_creation", "triangle_count",
        ]


def test_main_writes_json(bench_report, tmp_path, capsys):
    out = tmp_path / "BENCH_telemetry.json"
    assert bench_report.main(["--tier", "tiny", "--colors", "3", "--out", str(out)]) == 0
    assert str(out) in capsys.readouterr().out
    document = json.loads(out.read_text())
    assert document["schema"] == "repro-bench-telemetry/1"
    assert document["colors"] == 3
    assert len(document["runs"]) > 0


def test_ingest_sweep_parity_and_bounds(bench_report):
    document = bench_report.run_ingest_sweep("tiny", seed=0, num_colors=3)
    assert document["schema"] == bench_report.INGEST_SCHEMA
    assert document["runs"]
    for run in document["runs"]:
        assert run["counts_match"], run["graph"]
        assert run["ingest_batches"] >= 1
        assert 0 < run["peak_routed_bytes_batched"] <= (
            run["peak_routed_bytes_monolithic"]
        )
        assert run["overlap_saved_seconds"] >= 0.0


def test_imbalance_sweep_compares_remap(bench_report):
    document = bench_report.run_imbalance_sweep("tiny", seed=0, num_colors=3)
    assert document["schema"] == bench_report.IMBALANCE_SCHEMA
    assert document["runs"]
    for run in document["runs"]:
        assert run["counts_match"], run["graph"]
        assert run["counts_match_degree"], run["graph"]
        for side in ("baseline", "misra_gries", "degree"):
            skew = run[side]["count_seconds"]
            assert skew["max_over_mean"] >= 1.0
            assert skew["max"] >= skew["mean"]
        top = run["baseline"]["top_straggler"]
        assert top is not None and len(top["triplet"]) == 3
        assert run["skew_improvement_max_over_mean"] > 0
        assert run["skew_improvement_degree"] > 0


def test_main_writes_imbalance_artifact(bench_report, tmp_path, capsys):
    out = tmp_path / "BENCH_telemetry.json"
    imbalance_out = tmp_path / "BENCH_imbalance.json"
    code = bench_report.main(
        ["--tier", "tiny", "--colors", "3", "--out", str(out),
         "--imbalance-out", str(imbalance_out), "--misra-gries", "128:8"]
    )
    assert code == 0
    assert "skew comparisons" in capsys.readouterr().out
    document = json.loads(imbalance_out.read_text())
    assert document["schema"] == "repro-bench-imbalance/2"
    assert all(r["counts_match"] for r in document["runs"])
    assert all(r["counts_match_degree"] for r in document["runs"])
    assert all(r["misra_gries_k"] == 128 for r in document["runs"])


def test_main_writes_ingest_artifact(bench_report, tmp_path, capsys):
    out = tmp_path / "BENCH_telemetry.json"
    ingest_out = tmp_path / "BENCH_ingest.json"
    code = bench_report.main(
        ["--tier", "tiny", "--colors", "3", "--out", str(out),
         "--ingest-out", str(ingest_out)]
    )
    assert code == 0
    assert "0 count mismatches" in capsys.readouterr().out
    document = json.loads(ingest_out.read_text())
    assert document["schema"] == "repro-bench-ingest/1"
    assert all(r["counts_match"] for r in document["runs"])
