"""benchmarks/bench_report.py — the fig3-style telemetry sweep artifact."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

BENCH_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "bench_report.py"


@pytest.fixture(scope="module")
def bench_report():
    spec = importlib.util.spec_from_file_location("bench_report", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_run_sweep_covers_every_tiny_graph(bench_report):
    from repro.experiments.common import paper_graph_order_by_max_degree

    document = bench_report.run_sweep("tiny", seed=0)
    assert document["schema"] == bench_report.BENCH_SCHEMA
    assert [r["graph"] for r in document["runs"]] == list(
        paper_graph_order_by_max_degree("tiny")
    )
    for run in document["runs"]:
        assert set(run["phases"]) == {"setup", "sample_creation", "triangle_count"}
        assert run["count"] >= 0
        assert run["wall_seconds"] > 0
        assert "pim.edges_routed" in run["metrics"]
        assert [s["path"] for s in run["spans"]] == [
            "setup", "sample_creation", "triangle_count",
        ]


def test_main_writes_json(bench_report, tmp_path, capsys):
    out = tmp_path / "BENCH_telemetry.json"
    assert bench_report.main(["--tier", "tiny", "--colors", "3", "--out", str(out)]) == 0
    assert str(out) in capsys.readouterr().out
    document = json.loads(out.read_text())
    assert document["schema"] == "repro-bench-telemetry/1"
    assert document["colors"] == 3
    assert len(document["runs"]) > 0
