"""Universal color hash (paper Sec. 3.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigurationError
from repro.common.hashing import MERSENNE_PRIME_61, ColorHash
from repro.common.rng import RngFactory


def make_hash(num_colors: int, seed: int = 0) -> ColorHash:
    return ColorHash.random(num_colors, RngFactory(seed).stream("h"))


class TestConstruction:
    def test_mersenne_prime_value(self):
        assert MERSENNE_PRIME_61 == 2**61 - 1

    def test_rejects_zero_colors(self):
        with pytest.raises(ConfigurationError):
            ColorHash(a=1, b=0, num_colors=0)

    def test_rejects_a_zero(self):
        with pytest.raises(ConfigurationError):
            ColorHash(a=0, b=0, num_colors=3)

    def test_rejects_b_out_of_range(self):
        with pytest.raises(ConfigurationError):
            ColorHash(a=1, b=MERSENNE_PRIME_61, num_colors=3)

    def test_random_draws_in_range(self):
        h = make_hash(5)
        assert 1 <= h.a < h.p
        assert 0 <= h.b < h.p


class TestColorValues:
    def test_output_range_scalar(self):
        h = make_hash(7)
        for node in range(200):
            assert 0 <= h.color(node) < 7

    def test_output_range_vector(self):
        h = make_hash(7)
        colors = h.color_array(np.arange(5000))
        assert colors.min() >= 0 and colors.max() < 7

    def test_single_color_everything_zero(self):
        h = make_hash(1)
        assert np.all(h.color_array(np.arange(1000)) == 0)

    def test_deterministic(self):
        h = make_hash(5)
        np.testing.assert_array_equal(
            h.color_array(np.arange(100)), h.color_array(np.arange(100))
        )

    def test_roughly_uniform(self):
        """Counts per color over many nodes should be near-uniform."""
        h = make_hash(8, seed=3)
        colors = h.color_array(np.arange(80_000))
        counts = np.bincount(colors, minlength=8)
        assert counts.min() > 0.8 * 80_000 / 8
        assert counts.max() < 1.2 * 80_000 / 8

    def test_callable_alias(self):
        h = make_hash(4)
        np.testing.assert_array_equal(h(np.arange(32)), h.color_array(np.arange(32)))

    def test_rejects_ids_above_modulus(self):
        h = make_hash(4)
        with pytest.raises(ConfigurationError):
            h.color_array(np.array([h.p + 1], dtype=np.uint64))


class TestScalarVectorAgreement:
    """The vectorized Mersenne-fold arithmetic must match exact integer math."""

    @settings(max_examples=60, deadline=None)
    @given(
        a=st.integers(min_value=1, max_value=MERSENNE_PRIME_61 - 1),
        b=st.integers(min_value=0, max_value=MERSENNE_PRIME_61 - 1),
        c=st.integers(min_value=1, max_value=64),
        nodes=st.lists(st.integers(min_value=0, max_value=2**48), min_size=1, max_size=30),
    )
    def test_matches_python_ints(self, a, b, c, nodes):
        h = ColorHash(a=a, b=b, num_colors=c)
        vec = h.color_array(np.array(nodes, dtype=np.uint64))
        scalar = np.array([h.color(n) for n in nodes])
        np.testing.assert_array_equal(vec, scalar)

    def test_large_node_ids(self):
        h = make_hash(13, seed=9)
        nodes = np.array([2**40, 2**48, 2**55, 2**60], dtype=np.uint64)
        vec = h.color_array(nodes)
        scalar = np.array([h.color(int(n)) for n in nodes])
        np.testing.assert_array_equal(vec, scalar)
