"""Flamegraph export: collapsed stacks, SVG rendering, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import PimTriangleCounter
from repro.graph.generators import erdos_renyi
from repro.telemetry import (
    Telemetry,
    collapsed_stacks,
    flamegraph_svg,
    write_flamegraph,
)


def run_telemetry(seed: int = 2) -> Telemetry:
    rng = np.random.default_rng(5)
    graph = erdos_renyi(100, 500, rng).canonicalize()
    telemetry = Telemetry(detail=True)
    PimTriangleCounter(num_colors=4, seed=seed, telemetry=telemetry).count(graph)
    return telemetry


@pytest.fixture(scope="module")
def telemetry() -> Telemetry:
    return run_telemetry()


class TestCollapsedStacks:
    def test_format_and_weights(self, telemetry):
        text = collapsed_stacks(telemetry, axis="sim")
        lines = text.strip().splitlines()
        assert lines
        for line in lines:
            frames, value = line.rsplit(" ", 1)
            assert frames
            assert int(value) >= 1
        # Sorted by path => stable output.
        assert lines == sorted(lines)

    def test_phase_frames_present(self, telemetry):
        text = collapsed_stacks(telemetry, axis="sim")
        roots = {line.split(";")[0].split(" ")[0] for line in text.splitlines()}
        assert {"setup", "sample_creation", "triangle_count"} <= roots

    def test_sim_axis_is_deterministic(self):
        a = collapsed_stacks(run_telemetry(), axis="sim")
        b = collapsed_stacks(run_telemetry(), axis="sim")
        assert a == b

    def test_total_weight_matches_sim_clock(self):
        # Without per-DPU detail spans the tree is strictly sequential, so
        # self times partition the simulated total (up to rounding and the
        # 1μs floor).  Detail spans model *concurrent* DPUs and can sum past
        # their parent by design, so they are excluded here.
        rng = np.random.default_rng(5)
        graph = erdos_renyi(100, 500, rng).canonicalize()
        tel = Telemetry(detail=False)
        PimTriangleCounter(num_colors=4, seed=2, telemetry=tel).count(graph)
        total_micros = sum(
            int(line.rsplit(" ", 1)[1])
            for line in collapsed_stacks(tel, axis="sim").splitlines()
        )
        sim_total = sum(tel.phase_totals().values())
        assert total_micros == pytest.approx(sim_total * 1e6, rel=0.01, abs=50)

    def test_wall_axis_accepted_bad_axis_rejected(self, telemetry):
        assert collapsed_stacks(telemetry, axis="wall")
        with pytest.raises(ValueError, match="axis"):
            collapsed_stacks(telemetry, axis="cpu")

    def test_empty_telemetry_yields_empty_output(self):
        assert collapsed_stacks(Telemetry()) == ""


class TestSvg:
    def test_wellformed_and_labelled(self, telemetry):
        svg = flamegraph_svg(telemetry, axis="sim")
        assert svg.startswith("<svg ") and svg.rstrip().endswith("</svg>")
        assert "sim flamegraph" in svg
        assert "<title>" in svg
        assert "setup" in svg

    def test_parses_as_xml(self, telemetry):
        import xml.etree.ElementTree as ET

        root = ET.fromstring(flamegraph_svg(telemetry, axis="sim"))
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect")
        assert len(rects) > 3

    def test_sim_axis_svg_deterministic(self):
        assert flamegraph_svg(run_telemetry(), axis="sim") == flamegraph_svg(
            run_telemetry(), axis="sim"
        )

    def test_bad_axis_rejected(self, telemetry):
        with pytest.raises(ValueError, match="axis"):
            flamegraph_svg(telemetry, axis="nope")


class TestWriteFlamegraph:
    def test_suffix_dispatch(self, telemetry, tmp_path):
        svg_path = tmp_path / "fg.svg"
        txt_path = tmp_path / "fg.folded"
        write_flamegraph(str(svg_path), telemetry, axis="sim")
        write_flamegraph(str(txt_path), telemetry, axis="sim")
        assert svg_path.read_text().startswith("<svg ")
        first = txt_path.read_text().splitlines()[0]
        assert first.rsplit(" ", 1)[1].isdigit()

    def test_cli_flag_writes_flamegraph(self, tmp_path):
        from repro.cli import main as cli_main

        out = tmp_path / "run.svg"
        assert cli_main(
            [
                "dataset:wikipedia", "--tier", "tiny", "--colors", "4",
                "--flamegraph", str(out),
            ]
        ) == 0
        assert out.read_text().startswith("<svg ")

    def test_experiments_runner_flag(self, tmp_path):
        from repro.experiments.runner import main as exp_main

        out = tmp_path / "harness.folded"
        assert exp_main(
            ["tab1", "--tier", "tiny", "--flamegraph", str(out)]
        ) == 0
        assert "tab1" in out.read_text()
