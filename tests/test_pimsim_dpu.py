"""DPU timing model: water-filled pipeline + serial DMA engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import KernelLaunchError
from repro.pimsim.config import CostModel, DpuConfig
from repro.pimsim.dpu import Dpu


def make_dpu(**cfg) -> Dpu:
    return Dpu(dpu_id=0, config=DpuConfig(**cfg), cost=CostModel())


class TestCharging:
    def test_zero_charges_zero_time(self):
        assert make_dpu().compute_seconds() == 0.0

    def test_invalid_tasklet_rejected(self):
        dpu = make_dpu()
        with pytest.raises(KernelLaunchError):
            dpu.charge_instructions(16, 100)

    def test_negative_dma_rejected(self):
        dpu = make_dpu()
        with pytest.raises(KernelLaunchError):
            dpu.charge_mram_read(0, -5)

    def test_vector_charge_shape_checked(self):
        dpu = make_dpu()
        with pytest.raises(KernelLaunchError):
            dpu.charge_instructions_all(np.zeros(3))

    def test_reset(self):
        dpu = make_dpu()
        dpu.charge_instructions(0, 1000)
        dpu.reset_charges()
        assert dpu.compute_seconds() == 0.0

    def test_run_stats(self):
        dpu = make_dpu()
        dpu.charge_instructions(0, 500)
        dpu.charge_mram_read(1, 4096, requests=2)
        stats = dpu.run_stats()
        assert stats.instructions == 500
        assert stats.dma_requests == 2
        assert stats.dma_bytes == 4096
        assert stats.compute_seconds > 0


class TestPipelineModel:
    def test_single_tasklet_rate(self):
        """One tasklet issues once per pipeline_saturation cycles."""
        dpu = make_dpu(clock_hz=100.0, pipeline_saturation=11)
        dpu.charge_instructions(0, 100)
        assert dpu.compute_seconds() == pytest.approx(100 * 11 / 100.0)

    def test_saturated_pipeline_full_throughput(self):
        """16 equal tasklets retire 1 instr/cycle aggregate."""
        dpu = make_dpu(clock_hz=100.0, num_tasklets=16, pipeline_saturation=11)
        dpu.charge_instructions_all(np.full(16, 100.0))
        assert dpu.compute_seconds() == pytest.approx(1600 / 100.0)

    def test_balanced_charge_equals_manual_split(self):
        a = make_dpu()
        a.charge_balanced(1600)
        b = make_dpu()
        b.charge_instructions_all(np.full(16, 100.0))
        assert a.compute_seconds() == pytest.approx(b.compute_seconds())

    def test_imbalance_costs_more(self):
        balanced = make_dpu()
        balanced.charge_instructions_all(np.full(16, 100.0))
        skewed = make_dpu()
        charges = np.zeros(16)
        charges[0] = 1600
        skewed.charge_instructions_all(charges)
        assert skewed.compute_seconds() > balanced.compute_seconds()

    @settings(max_examples=40, deadline=None)
    @given(
        charges=st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=16, max_size=16
        )
    )
    def test_time_bounds(self, charges):
        """Water-filled time is between total/clock and slowest*sat/clock bounds."""
        dpu = make_dpu(clock_hz=350e6)
        arr = np.array(charges)
        dpu.charge_instructions_all(arr)
        t = dpu.compute_seconds()
        lower = arr.sum() / 350e6
        upper = arr.sum() * 11 / 350e6 + 1e-12
        assert lower - 1e-12 <= t <= upper

    def test_monotone_in_instructions(self):
        a = make_dpu()
        a.charge_instructions(0, 100)
        b = make_dpu()
        b.charge_instructions(0, 200)
        assert b.compute_seconds() > a.compute_seconds()


class TestDmaModel:
    def test_dma_is_serial_across_tasklets(self):
        """The MRAM engine is shared: N tasklets' DMA sums, not overlaps."""
        one = make_dpu()
        one.charge_mram_read(0, 1 << 20)
        spread = make_dpu()
        for tk in range(16):
            spread.charge_mram_read(tk, (1 << 20) // 16)
        assert spread.compute_seconds() == pytest.approx(one.compute_seconds(), rel=0.01)

    def test_dma_request_latency_counts(self):
        few = make_dpu()
        few.charge_mram_read(0, 4096, requests=1)
        many = make_dpu()
        many.charge_mram_read(0, 4096, requests=64)
        assert many.compute_seconds() > few.compute_seconds()

    def test_compute_dma_overlap_takes_max(self):
        """A DPU busy on both resources finishes at the slower one."""
        dpu = make_dpu(clock_hz=350e6)
        dpu.charge_instructions_all(np.full(16, 1000.0))  # tiny pipeline load
        dpu.charge_mram_read(0, 10 << 20)  # dominant DMA
        dma_only = make_dpu(clock_hz=350e6)
        dma_only.charge_mram_read(0, 10 << 20)
        assert dpu.compute_seconds() == pytest.approx(dma_only.compute_seconds())

    def test_write_bandwidth_used_for_writes(self):
        r = make_dpu()
        r.charge_mram_read(0, 1 << 20, requests=0)
        w = make_dpu()
        w.charge_mram_write(0, 1 << 20, requests=0)
        ratio = r.compute_seconds() / w.compute_seconds()
        cost = CostModel()
        assert ratio == pytest.approx(
            cost.mram_write_bandwidth / cost.mram_read_bandwidth, rel=1e-6
        )
