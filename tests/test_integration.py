"""Cross-module integration scenarios exercising the whole stack end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DynamicPimCounter, PimTriangleCounter
from repro.baselines import CpuCsrCounter, GpuCounter
from repro.graph.datasets import get_dataset
from repro.graph.generators import rmat
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.triangles import count_triangles
from repro.pimsim.config import DpuConfig, PimSystemConfig
from repro.streaming.estimators import relative_error


class TestFileToCount:
    """The paper's actual workflow: COO file on disk -> count."""

    def test_round_trip_through_disk(self, tmp_path, rngs):
        g = rmat(9, 8, rngs.stream("file")).canonicalize()
        path = tmp_path / "graph.el"
        write_edge_list(g, path)
        loaded = read_edge_list(path, num_nodes=g.num_nodes).canonicalize()
        result = PimTriangleCounter(num_colors=4, seed=1).count(loaded)
        assert result.count == count_triangles(g)


class TestAllCountersAgree:
    @pytest.mark.parametrize("name", ["kronecker23", "orkut", "humanjung"])
    def test_pim_cpu_gpu_same_count(self, name):
        g = get_dataset(name, "tiny")
        pim = PimTriangleCounter(num_colors=4, seed=0).count(g).count
        cpu = CpuCsrCounter().count(g).count
        gpu = GpuCounter().count(g).count
        assert pim == cpu == gpu == count_triangles(g)


class TestSmallMramForcesReservoir:
    def test_tiny_banks_still_estimate(self, rngs):
        """A system with miniature MRAM banks transparently falls back to
        reservoir sampling instead of failing."""
        g = rmat(10, 8, rngs.stream("small-mram")).canonicalize()
        truth = count_triangles(g)
        config = PimSystemConfig(dpu=DpuConfig(mram_bytes=16 * 1024))  # 16 KiB banks
        result = PimTriangleCounter(num_colors=3, seed=1, system_config=config).count(g)
        assert not result.is_exact
        assert np.all(result.reservoir_scales > 0)
        assert relative_error(result.estimate, truth) < 0.5

    def test_full_banks_exact_on_same_graph(self, rngs):
        g = rmat(10, 8, rngs.stream("small-mram")).canonicalize()
        result = PimTriangleCounter(num_colors=3, seed=1).count(g)
        assert result.count == count_triangles(g)


class TestStaticVsDynamicConsistency:
    def test_dynamic_final_state_matches_static(self):
        g = get_dataset("livejournal", "tiny")
        static = PimTriangleCounter(num_colors=3, seed=7).count(g)
        dyn = DynamicPimCounter(g.num_nodes, num_colors=3, seed=7)
        for batch in g.split_batches(6):
            dyn.apply_update(batch)
        assert dyn.triangles == static.count == count_triangles(g)


class TestSeedStability:
    def test_full_pipeline_deterministic(self):
        g = get_dataset("orkut", "tiny")
        a = PimTriangleCounter(num_colors=4, uniform_p=0.5, seed=3).count(g)
        b = PimTriangleCounter(num_colors=4, uniform_p=0.5, seed=3).count(g)
        assert a.estimate == b.estimate
        np.testing.assert_array_equal(a.per_dpu_counts, b.per_dpu_counts)
        assert a.total_seconds == pytest.approx(b.total_seconds)


class TestScaledSystems:
    def test_one_dimm_system(self):
        """A single-DIMM machine (128 DPUs) supports at most 8 colors."""
        config = PimSystemConfig(num_ranks=2, dpus_per_rank=64)
        counter = PimTriangleCounter(num_colors=8, system_config=config)
        assert counter.max_colors() == 8
        g = get_dataset("v1r", "tiny")
        assert counter.count(g).count == count_triangles(g)

    def test_paper_system_shape(self):
        from repro.pimsim.config import PAPER_SYSTEM

        assert PAPER_SYSTEM.total_dpus == 2560
        assert PAPER_SYSTEM.dpu.mram_bytes == 64 * 1024 * 1024
        assert PAPER_SYSTEM.dpu.num_tasklets == 16


class TestEndToEndProperty:
    """One hypothesis property over the whole stack: random graph, random
    configuration, exact path — the pipeline must equal the oracle."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=20, deadline=None)
    @given(
        data=st.data(),
    )
    def test_pipeline_exact_for_random_configs(self, data):
        from conftest import graph_strategy

        g = data.draw(graph_strategy(max_nodes=24, max_edges=90))
        colors = data.draw(self.st.integers(min_value=1, max_value=6))
        seed = data.draw(self.st.integers(min_value=0, max_value=100))
        use_mg = data.draw(self.st.booleans())
        variant = data.draw(self.st.sampled_from(["merge", "probe"]))
        kwargs = dict(num_colors=colors, seed=seed)
        if use_mg:
            kwargs.update(misra_gries_k=16, misra_gries_t=2)
        counter = PimTriangleCounter(**kwargs).with_options(kernel_variant=variant)
        assert counter.count(g).count == count_triangles(g)
