"""Triplet algebra: counts, LUT correctness, load classes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.triplets import TripletTable, colors_for_dpus, num_triplets


class TestNumTriplets:
    @pytest.mark.parametrize(
        "c,expected", [(1, 1), (2, 4), (3, 10), (4, 20), (23, 2300)]
    )
    def test_binomial_formula(self, c, expected):
        assert num_triplets(c) == expected

    def test_paper_configuration(self):
        """The paper's 2560-DPU system supports at most 23 colors (2300 DPUs)."""
        assert colors_for_dpus(2560) == 23

    def test_colors_for_one_dpu(self):
        assert colors_for_dpus(1) == 1

    def test_colors_for_dpus_is_tight(self):
        for max_dpus in (1, 5, 20, 100, 2560):
            c = colors_for_dpus(max_dpus)
            assert num_triplets(c) <= max_dpus
            assert num_triplets(c + 1) > max_dpus


class TestTableStructure:
    @pytest.mark.parametrize("c", [1, 2, 3, 5, 8])
    def test_enumeration_count(self, c):
        table = TripletTable.build(c)
        assert table.num_dpus == num_triplets(c)

    def test_rows_sorted_nondecreasing(self):
        table = TripletTable.build(5)
        assert np.all(table.triplets[:, 0] <= table.triplets[:, 1])
        assert np.all(table.triplets[:, 1] <= table.triplets[:, 2])

    def test_rows_unique(self):
        table = TripletTable.build(6)
        seen = {tuple(r) for r in table.triplets.tolist()}
        assert len(seen) == table.num_dpus

    @pytest.mark.parametrize("c", [2, 4, 7])
    def test_load_class_counts(self, c):
        """Sec. 3.1: C mono, C(C-1) two-color, binom(C,3) three-color triplets."""
        counts = TripletTable.build(c).load_class_counts()
        assert counts.get(1, 0) == c
        assert counts.get(2, 0) == c * (c - 1)
        expected3 = c * (c - 1) * (c - 2) // 6
        assert counts.get(3, 0) == expected3

    def test_mono_mask(self):
        table = TripletTable.build(4)
        mono = table.mono_mask()
        assert mono.sum() == 4
        for i in np.nonzero(mono)[0]:
            t = table.triplet_of(int(i))
            assert t[0] == t[1] == t[2]


class TestLut:
    @settings(max_examples=50, deadline=None)
    @given(
        c=st.integers(min_value=1, max_value=8),
        data=st.data(),
    )
    def test_lut_order_invariant(self, c, data):
        table = TripletTable.build(c)
        i = data.draw(st.integers(min_value=0, max_value=c - 1))
        j = data.draw(st.integers(min_value=0, max_value=c - 1))
        k = data.draw(st.integers(min_value=0, max_value=c - 1))
        ids = {table.lut[p] for p in [(i, j, k), (k, j, i), (j, i, k), (k, i, j)]}
        assert len(ids) == 1

    def test_lut_matches_enumeration(self):
        table = TripletTable.build(5)
        for idx, row in enumerate(table.triplets.tolist()):
            assert table.lut[tuple(row)] == idx

    def test_lut_complete(self):
        assert not np.any(TripletTable.build(6).lut < 0)


class TestCompatibility:
    def test_edge_goes_to_exactly_c_dpus(self):
        table = TripletTable.build(5)
        for a in range(5):
            for b in range(5):
                targets = table.compatible_dpus(a, b)
                assert np.unique(targets).size == 5

    def test_mono_edge_targets_contain_double_color(self):
        """An (a, a)-colored edge's targets must all contain color a twice."""
        c = 4
        table = TripletTable.build(c)
        for a in range(c):
            for dpu in table.compatible_dpus(a, a):
                row = table.triplets[dpu].tolist()
                assert row.count(a) >= 2

    def test_bicolor_edge_targets_contain_both(self):
        c = 5
        table = TripletTable.build(c)
        for dpu in table.compatible_dpus(1, 3):
            row = table.triplets[dpu].tolist()
            assert 1 in row and 3 in row

    def test_edge_multiplicity(self):
        assert TripletTable.build(7).edge_multiplicity() == 7
