"""Reservoir sampling: bounds, uniformity, estimator behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as sps

from repro.common.rng import RngFactory
from repro.streaming.reservoir import (
    EdgeReservoir,
    expected_sample_edges,
    reservoir_scale,
)


def fresh(capacity: int, seed: int = 0) -> EdgeReservoir:
    return EdgeReservoir(capacity, RngFactory(seed).stream("res"))


class TestScaleFactor:
    def test_no_overflow_is_one(self):
        assert reservoir_scale(100, 50) == 1.0
        assert reservoir_scale(100, 100) == 1.0

    def test_overflow_formula(self):
        m, t = 10, 20
        expected = (10 * 9 * 8) / (20 * 19 * 18)
        assert reservoir_scale(m, t) == pytest.approx(expected)

    def test_tiny_capacity_degenerates_to_one(self):
        assert reservoir_scale(2, 100) == 1.0

    def test_decreasing_in_t(self):
        scales = [reservoir_scale(50, t) for t in (60, 100, 500, 5000)]
        assert scales == sorted(scales, reverse=True)

    def test_expected_sample_edges(self):
        assert expected_sample_edges(10, 5) == 5
        assert expected_sample_edges(10, 50) == 10


class TestSequentialRule:
    def test_fills_up_to_capacity(self):
        r = fresh(5)
        for i in range(5):
            assert r.offer_one(i, i + 1)
        assert r.size == 5
        assert not r.overflowed

    def test_never_exceeds_capacity(self):
        r = fresh(8)
        for i in range(1000):
            r.offer_one(i, i + 1)
        assert r.size == 8
        assert r.seen == 1000
        assert r.overflowed

    def test_replacements_counted(self):
        r = fresh(4, seed=3)
        for i in range(400):
            r.offer_one(i, i + 1)
        assert 0 < r.replacements < 400

    def test_inclusion_probability_uniform(self):
        """Each stream element survives with probability M/t (chi-square check)."""
        m, n, trials = 8, 40, 3000
        counts = np.zeros(n)
        for t in range(trials):
            r = fresh(m, seed=t)
            for i in range(n):
                r.offer_one(i, i)
            src, _ = r.edges()
            counts[src] += 1
        expected = trials * m / n
        chi2 = ((counts - expected) ** 2 / expected).sum()
        # dof = n-1; accept at the 1e-4 level to keep flakiness negligible.
        assert chi2 < sps.chi2.ppf(1 - 1e-4, df=n - 1)


class TestBatchRule:
    def test_matches_capacity_semantics(self):
        r = fresh(16)
        r.offer_batch(np.arange(100), np.arange(100) + 1)
        assert r.size == 16
        assert r.seen == 100

    def test_partial_fill_then_overflow(self):
        r = fresh(10)
        r.offer_batch(np.arange(4), np.arange(4))
        assert r.size == 4
        r.offer_batch(np.arange(50), np.arange(50))
        assert r.size == 10
        assert r.seen == 54

    def test_empty_batch_noop(self):
        r = fresh(4)
        assert r.offer_batch(np.array([]), np.array([])) == 0
        assert r.seen == 0

    def test_batch_distribution_matches_sequential(self):
        """Survival frequencies of batch vs sequential processing agree."""
        m, n, trials = 6, 30, 2000
        freq_seq = np.zeros(n)
        freq_batch = np.zeros(n)
        for t in range(trials):
            r1 = fresh(m, seed=t)
            for i in range(n):
                r1.offer_one(i, i)
            s, _ = r1.edges()
            freq_seq[s] += 1
            r2 = fresh(m, seed=10_000 + t)
            r2.offer_batch(np.arange(n), np.arange(n))
            s, _ = r2.edges()
            freq_batch[s] += 1
        # Two-sample agreement: max deviation of inclusion rates is small.
        assert np.abs(freq_seq - freq_batch).max() / trials < 0.05

    def test_deterministic_given_stream(self):
        a = fresh(8, seed=5)
        a.offer_batch(np.arange(100), np.arange(100))
        b = fresh(8, seed=5)
        b.offer_batch(np.arange(100), np.arange(100))
        np.testing.assert_array_equal(a.edges()[0], b.edges()[0])


class TestEstimator:
    def test_triangle_estimator_unbiased(self):
        """Monte-Carlo: E[count/scale] over a clique's edge stream ~ true count.

        Stream the 45 edges of K10 (120 triangles) through a reservoir of 25;
        count triangles among surviving edges, divide by the scale factor.
        """
        from repro.graph.coo import COOGraph
        from repro.graph.triangles import count_triangles

        edges = [(i, j) for i in range(10) for j in range(i + 1, 10)]
        arr = np.array(edges, dtype=np.int64)
        truth = 120
        estimates = []
        for t in range(400):
            r = fresh(25, seed=t)
            perm = RngFactory(t).stream("perm").permutation(len(edges))
            r.offer_batch(arr[perm, 0], arr[perm, 1])
            src, dst = r.edges()
            sub = COOGraph(src.copy(), dst.copy(), 10)
            estimates.append(count_triangles(sub) / r.scale())
        mean = float(np.mean(estimates))
        # Standard error ~ a few; accept a generous band.
        assert mean == pytest.approx(truth, rel=0.15)
