"""Reservoir sampling: bounds, uniformity, estimator behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats as sps

from repro.common.rng import RngFactory
from repro.streaming.reservoir import (
    EdgeReservoir,
    expected_sample_edges,
    reservoir_scale,
)


def fresh(capacity: int, seed: int = 0) -> EdgeReservoir:
    return EdgeReservoir(capacity, RngFactory(seed).stream("res"))


class TestScaleFactor:
    def test_no_overflow_is_one(self):
        assert reservoir_scale(100, 50) == 1.0
        assert reservoir_scale(100, 100) == 1.0

    def test_overflow_formula(self):
        m, t = 10, 20
        expected = (10 * 9 * 8) / (20 * 19 * 18)
        assert reservoir_scale(m, t) == pytest.approx(expected)

    def test_tiny_capacity_degenerates_to_one(self):
        assert reservoir_scale(2, 100) == 1.0

    def test_decreasing_in_t(self):
        scales = [reservoir_scale(50, t) for t in (60, 100, 500, 5000)]
        assert scales == sorted(scales, reverse=True)

    def test_expected_sample_edges(self):
        assert expected_sample_edges(10, 5) == 5
        assert expected_sample_edges(10, 50) == 10


class TestSequentialRule:
    def test_fills_up_to_capacity(self):
        r = fresh(5)
        for i in range(5):
            assert r.offer_one(i, i + 1)
        assert r.size == 5
        assert not r.overflowed

    def test_never_exceeds_capacity(self):
        r = fresh(8)
        for i in range(1000):
            r.offer_one(i, i + 1)
        assert r.size == 8
        assert r.seen == 1000
        assert r.overflowed

    def test_replacements_counted(self):
        r = fresh(4, seed=3)
        for i in range(400):
            r.offer_one(i, i + 1)
        assert 0 < r.replacements < 400

    def test_inclusion_probability_uniform(self):
        """Each stream element survives with probability M/t (chi-square check)."""
        m, n, trials = 8, 40, 3000
        counts = np.zeros(n)
        for t in range(trials):
            r = fresh(m, seed=t)
            for i in range(n):
                r.offer_one(i, i)
            src, _ = r.edges()
            counts[src] += 1
        expected = trials * m / n
        chi2 = ((counts - expected) ** 2 / expected).sum()
        # dof = n-1; accept at the 1e-4 level to keep flakiness negligible.
        assert chi2 < sps.chi2.ppf(1 - 1e-4, df=n - 1)


class TestBatchRule:
    def test_matches_capacity_semantics(self):
        r = fresh(16)
        r.offer_batch(np.arange(100), np.arange(100) + 1)
        assert r.size == 16
        assert r.seen == 100

    def test_partial_fill_then_overflow(self):
        r = fresh(10)
        r.offer_batch(np.arange(4), np.arange(4))
        assert r.size == 4
        r.offer_batch(np.arange(50), np.arange(50))
        assert r.size == 10
        assert r.seen == 54

    def test_empty_batch_noop(self):
        r = fresh(4)
        assert r.offer_batch(np.array([]), np.array([])) == 0
        assert r.seen == 0

    def test_batch_distribution_matches_sequential(self):
        """Survival frequencies of batch vs sequential processing agree."""
        m, n, trials = 6, 30, 2000
        freq_seq = np.zeros(n)
        freq_batch = np.zeros(n)
        for t in range(trials):
            r1 = fresh(m, seed=t)
            for i in range(n):
                r1.offer_one(i, i)
            s, _ = r1.edges()
            freq_seq[s] += 1
            r2 = fresh(m, seed=10_000 + t)
            r2.offer_batch(np.arange(n), np.arange(n))
            s, _ = r2.edges()
            freq_batch[s] += 1
        # Two-sample agreement: max deviation of inclusion rates is small.
        assert np.abs(freq_seq - freq_batch).max() / trials < 0.05

    def test_deterministic_given_stream(self):
        a = fresh(8, seed=5)
        a.offer_batch(np.arange(100), np.arange(100))
        b = fresh(8, seed=5)
        b.offer_batch(np.arange(100), np.arange(100))
        np.testing.assert_array_equal(a.edges()[0], b.edges()[0])


class TestChunkBoundary:
    """Chunked ``offer_batch`` calls must reproduce the sequential semantics
    across chunk boundaries (the batched-ingest pipeline splits mid-stream)."""

    @pytest.mark.parametrize("split", (1, 3, 7, 50))
    def test_no_overflow_contents_bit_identical(self, split):
        # Pre-overflow offers are pure appends (zero RNG draws), so any
        # chunking stores the identical contents in the identical order.
        n = 50
        src, dst = np.arange(n), np.arange(n) + 100
        one = fresh(n, seed=2)
        one.offer_batch(src, dst)
        chunked = fresh(n, seed=2)
        for lo in range(0, n, split):
            chunked.offer_batch(src[lo : lo + split], dst[lo : lo + split])
        np.testing.assert_array_equal(chunked.edges()[0], one.edges()[0])
        np.testing.assert_array_equal(chunked.edges()[1], one.edges()[1])
        assert (chunked.seen, chunked.size) == (one.seen, one.size)

    @pytest.mark.parametrize("split", (1, 9, 33))
    def test_overflow_state_invariant_under_chunking(self, split):
        n, m = 120, 16
        src, dst = np.arange(n), np.arange(n)
        one = fresh(m, seed=4)
        one.offer_batch(src, dst)
        chunked = fresh(m, seed=4)
        for lo in range(0, n, split):
            chunked.offer_batch(src[lo : lo + split], dst[lo : lo + split])
        # seen/size/scale never depend on the chunking; contents are governed
        # by global arrival indices so both remain samples of the stream.
        assert chunked.seen == one.seen == n
        assert chunked.size == one.size == m
        assert chunked.scale() == one.scale()
        assert set(chunked.edges()[0].tolist()) <= set(range(n))

    def test_chunked_acceptance_distribution_matches_sequential(self):
        """Inclusion frequencies with a mid-stream chunk boundary match the
        one-call batch rule (and hence the sequential rule, tested above)."""
        m, n, trials = 6, 30, 2000
        freq_one = np.zeros(n)
        freq_chunked = np.zeros(n)
        for t in range(trials):
            r1 = fresh(m, seed=t)
            r1.offer_batch(np.arange(n), np.arange(n))
            freq_one[r1.edges()[0]] += 1
            r2 = fresh(m, seed=20_000 + t)
            # Boundary inside the overflow region: offers 0..10 then 11..n.
            r2.offer_batch(np.arange(11), np.arange(11))
            r2.offer_batch(np.arange(11, n), np.arange(11, n))
            freq_chunked[r2.edges()[0]] += 1
        assert np.abs(freq_one - freq_chunked).max() / trials < 0.05


class TestLazyGrowth:
    def test_large_capacity_allocates_small(self):
        r = fresh(10**6)
        assert r._src.size == EdgeReservoir._INITIAL_ROOM
        assert r._dst.size == EdgeReservoir._INITIAL_ROOM

    def test_grows_with_stream_not_capacity(self):
        r = fresh(10**6)
        r.offer_batch(np.arange(3000), np.arange(3000))
        assert r.size == 3000
        assert 3000 <= r._src.size < 10**6
        np.testing.assert_array_equal(r.edges()[0], np.arange(3000))

    def test_overflow_forces_exact_capacity(self):
        r = fresh(2000)
        r.offer_batch(np.arange(5000), np.arange(5000))
        # By overflow time the fill phase pinned the arrays to capacity, so
        # replacement slots in [0, capacity) are always in range.
        assert r._src.size == 2000
        assert r.size == 2000

    def test_offer_one_growth_path(self):
        r = fresh(10**5)
        for i in range(EdgeReservoir._INITIAL_ROOM + 10):
            r.offer_one(i, i)
        assert r.size == EdgeReservoir._INITIAL_ROOM + 10
        assert r._src.size >= r.size
        assert int(r.edges()[0][-1]) == EdgeReservoir._INITIAL_ROOM + 9


class TestEstimator:
    def test_triangle_estimator_unbiased(self):
        """Monte-Carlo: E[count/scale] over a clique's edge stream ~ true count.

        Stream the 45 edges of K10 (120 triangles) through a reservoir of 25;
        count triangles among surviving edges, divide by the scale factor.
        """
        from repro.graph.coo import COOGraph
        from repro.graph.triangles import count_triangles

        edges = [(i, j) for i in range(10) for j in range(i + 1, 10)]
        arr = np.array(edges, dtype=np.int64)
        truth = 120
        estimates = []
        for t in range(400):
            r = fresh(25, seed=t)
            perm = RngFactory(t).stream("perm").permutation(len(edges))
            r.offer_batch(arr[perm, 0], arr[perm, 1])
            src, dst = r.edges()
            sub = COOGraph(src.copy(), dst.copy(), 10)
            estimates.append(count_triangles(sub) / r.scale())
        mean = float(np.mean(estimates))
        # Standard error ~ a few; accept a generous band.
        assert mean == pytest.approx(truth, rel=0.15)
