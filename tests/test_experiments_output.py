"""Table output formats (markdown, charts) and the tasklet ablation."""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment
from repro.experiments.tables import Table


class TestMarkdown:
    def test_structure(self):
        t = Table(title="T", headers=["a", "b"], notes="note")
        t.add_row(1, 2.5)
        md = t.to_markdown()
        assert md.startswith("### T")
        assert "| a | b |" in md
        assert "| 1 | 2.5 |" in md
        assert "_note_" in md

    def test_runner_markdown_flag(self, capsys):
        from repro.experiments.runner import main

        assert main(["tab1", "--tier", "tiny", "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("### Table 1")


class TestCharts:
    def test_bar_lengths_scale(self):
        t = Table(title="T", headers=["name", "v"])
        t.add_row("big", 100.0)
        t.add_row("small", 25.0)
        chart = t.render_chart("v", width=40)
        lines = chart.splitlines()[1:]
        big_bar = lines[0].count("#")
        small_bar = lines[1].count("#")
        assert big_bar == 40
        assert small_bar == 10

    def test_log_scale_compresses(self):
        t = Table(title="T", headers=["name", "v"])
        t.add_row("big", 10000.0)
        t.add_row("small", 1.0)
        linear = t.render_chart("v", width=40)
        log = t.render_chart("v", width=40, log_scale=True)
        small_linear = linear.splitlines()[2].count("#")
        small_log = log.splitlines()[2].count("#")
        assert small_log > small_linear

    def test_empty_table(self):
        t = Table(title="T", headers=["name", "v"])
        assert "(no rows)" in t.render_chart("v")

    def test_zero_values_get_no_bar(self):
        t = Table(title="T", headers=["name", "v"])
        t.add_row("zero", 0.0)
        t.add_row("one", 1.0)
        chart = t.render_chart("v")
        assert chart.splitlines()[1].count("#") == 0

    def test_runner_chart_flag(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig3", "--tier", "tiny", "--chart"]) == 0
        assert "#" in capsys.readouterr().out


class TestAblTasklets:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("abl_tasklets", tier="tiny")

    def test_all_exact(self, table):
        assert all(table.column("Exact?"))

    def test_near_linear_up_to_saturation(self, table):
        rows = {r[0]: r for r in table.rows}
        assert rows[8][2] > 4.0  # 8 tasklets at least 4x one tasklet

    def test_flat_beyond_saturation(self, table):
        rows = {r[0]: r for r in table.rows}
        # 16 tasklets buy < 15% over 11 (pipeline already full).
        assert rows[16][2] / rows[11][2] < 1.15


class TestAblHost:
    @pytest.fixture(scope="class")
    def table(self):
        return run_experiment("abl_host", tier="tiny")

    def test_all_exact(self, table):
        assert all(table.column("Exact?"))

    def test_sample_time_monotone_nonincreasing(self, table):
        samples = table.column("Sample ms")
        assert all(b <= a + 1e-9 for a, b in zip(samples, samples[1:]))

    def test_count_phase_thread_independent(self, table):
        counts = table.column("Count ms")
        assert max(counts) - min(counts) < 1e-6


class TestSystemPresets:
    def test_devkit_shape(self):
        from repro.pimsim import DEVKIT_SYSTEM

        assert DEVKIT_SYSTEM.total_dpus == 128

    def test_devkit_supports_eight_colors(self):
        from repro import PimTriangleCounter
        from repro.pimsim import DEVKIT_SYSTEM

        counter = PimTriangleCounter(num_colors=8, system_config=DEVKIT_SYSTEM)
        assert counter.max_colors() == 8
