"""Auto-tuner: strategy/C/MG selection from graph stats, with a trace."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coloring.autotune import (
    DEFAULT_MG_K,
    DEFAULT_MG_T,
    MG_SKEW_THRESHOLD,
    SKEW_DEGREE_THRESHOLD,
    TARGET_EDGES_PER_DPU,
    auto_tune,
)
from repro.coloring.triplets import num_triplets
from repro.graph.coo import COOGraph
from repro.graph.generators import erdos_renyi, hub_graph


def _uniform_graph(seed: int = 0) -> COOGraph:
    # ER with m ~= 2n keeps max/avg degree well under the skew threshold
    return erdos_renyi(400, 800, np.random.default_rng(seed)).canonicalize()


def _hub_heavy_graph(seed: int = 0) -> COOGraph:
    return hub_graph(300, 300, 2, 250, np.random.default_rng(seed)).canonicalize()


class TestStrategySelection:
    def test_uniform_graph_keeps_hash(self):
        d = auto_tune(_uniform_graph(), max_dpus=2048)
        assert d.degree_skew < SKEW_DEGREE_THRESHOLD
        assert d.strategy == "hash"

    def test_hub_graph_picks_degree(self):
        d = auto_tune(_hub_heavy_graph(), max_dpus=2048)
        assert d.degree_skew >= SKEW_DEGREE_THRESHOLD
        assert d.strategy == "degree"

    def test_extreme_skew_enables_misra_gries(self):
        d = auto_tune(_hub_heavy_graph(), max_dpus=2048)
        if d.degree_skew >= MG_SKEW_THRESHOLD:
            assert (d.misra_gries_k, d.misra_gries_t) == (DEFAULT_MG_K, DEFAULT_MG_T)
        else:  # pragma: no cover - generator drift guard
            assert d.misra_gries_k is None

    def test_user_mg_respected_verbatim(self):
        d = auto_tune(_hub_heavy_graph(), max_dpus=2048, misra_gries_k=64,
                      misra_gries_t=4)
        assert (d.misra_gries_k, d.misra_gries_t) == (64, 4)
        step = next(s for s in d.trace if s["rule"] == "misra_gries")
        assert "verbatim" in step["why"]


class TestColorSizing:
    def test_colors_respect_core_budget(self):
        d = auto_tune(_uniform_graph(), max_dpus=35)  # binom(7,3)=35 -> C<=5
        assert num_triplets(d.num_colors) <= 35

    def test_colors_grow_with_edges(self):
        small = auto_tune(_uniform_graph(), max_dpus=100_000)
        big_graph = erdos_renyi(
            5000, 200_000, np.random.default_rng(1)
        ).canonicalize()
        big = auto_tune(big_graph, max_dpus=100_000)
        assert big.num_colors >= small.num_colors
        # sizing rule: 6|E|/C^2 at the chosen C is near the target (it is
        # the smallest admissible C unless clamped)
        assert 6 * big.num_edges / big.num_colors**2 <= TARGET_EDGES_PER_DPU * 1.5

    def test_empty_graph(self):
        g = COOGraph.from_edges([], num_nodes=4)
        d = auto_tune(g, max_dpus=2048)
        assert d.num_colors == 2
        assert d.strategy == "hash"


class TestTraceAndDeterminism:
    def test_trace_explains_every_knob(self):
        d = auto_tune(_hub_heavy_graph(), max_dpus=2048)
        rules = [s["rule"] for s in d.trace]
        assert rules == ["strategy", "colors", "misra_gries", "expected_load"]
        assert all("why" in s for s in d.trace)

    def test_to_dict_round_trips(self):
        import json

        d = auto_tune(_hub_heavy_graph(), max_dpus=2048)
        blob = json.dumps(d.to_dict())  # must be JSON-serialisable for meta
        assert json.loads(blob)["strategy"] == d.strategy

    def test_deterministic(self):
        a = auto_tune(_hub_heavy_graph(), max_dpus=2048)
        b = auto_tune(_hub_heavy_graph(), max_dpus=2048)
        assert a == b

    def test_expected_load_positive(self):
        d = auto_tune(_hub_heavy_graph(), max_dpus=2048)
        assert d.expected_max_edges_per_dpu > 0
