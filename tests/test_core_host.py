"""Full host pipeline: exactness, phases, sampling modes, option validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.core.host import PimTcOptions, PimTcPipeline
from repro.graph.datasets import get_dataset
from repro.graph.generators import erdos_renyi
from repro.graph.triangles import count_triangles
from repro.pimsim.config import PimSystemConfig
from repro.pimsim.system import PimSystem
from repro.streaming.estimators import relative_error


def run_pipeline(graph, **options):
    return PimTcPipeline(PimTcOptions(**options)).run(graph)


class TestOptionsValidation:
    def test_rejects_zero_colors(self):
        with pytest.raises(ConfigurationError):
            PimTcOptions(num_colors=0)

    def test_rejects_bad_uniform_p(self):
        with pytest.raises(ConfigurationError):
            PimTcOptions(uniform_p=0.0)
        with pytest.raises(ConfigurationError):
            PimTcOptions(uniform_p=1.5)

    def test_mg_params_must_pair(self):
        with pytest.raises(ConfigurationError):
            PimTcOptions(misra_gries_k=10)
        with pytest.raises(ConfigurationError):
            PimTcOptions(misra_gries_t=10)

    def test_rejects_too_many_colors_for_system(self):
        tiny = PimSystem(PimSystemConfig(num_ranks=1, dpus_per_rank=4))
        with pytest.raises(ConfigurationError):
            PimTcPipeline(PimTcOptions(num_colors=3), system=tiny)

    def test_rejects_zero_reservoir(self):
        g = erdos_renyi(20, 40, np.random.default_rng(0)).canonicalize()
        with pytest.raises(ConfigurationError):
            run_pipeline(g, num_colors=2, reservoir_capacity=0)


class TestExactCounting:
    @pytest.mark.parametrize("colors", [1, 2, 4, 6])
    def test_exact_across_colors(self, small_graph, colors):
        result = run_pipeline(small_graph, num_colors=colors, seed=3)
        assert result.count == count_triangles(small_graph)
        assert result.is_exact

    @pytest.mark.parametrize(
        "name", ["kronecker23", "v1r", "livejournal", "orkut", "humanjung", "wikipedia"]
    )
    def test_exact_on_all_datasets(self, name):
        g = get_dataset(name, "tiny")
        result = run_pipeline(g, num_colors=4, seed=1)
        assert result.count == count_triangles(g)

    def test_different_seeds_same_exact_count(self, small_graph):
        truth = count_triangles(small_graph)
        for seed in range(4):
            assert run_pipeline(small_graph, num_colors=3, seed=seed).count == truth

    def test_empty_graph(self):
        from repro.graph.coo import COOGraph

        g = COOGraph.from_edges([], num_nodes=8)
        result = run_pipeline(g, num_colors=2)
        assert result.count == 0


class TestPhases:
    def test_all_three_phases_populated(self, small_graph):
        r = run_pipeline(small_graph, num_colors=3)
        assert r.setup_seconds > 0
        assert r.sample_creation_seconds > 0
        assert r.triangle_count_seconds > 0
        assert r.total_seconds == pytest.approx(
            r.setup_seconds + r.sample_creation_seconds + r.triangle_count_seconds
        )

    def test_seconds_without_setup(self, small_graph):
        r = run_pipeline(small_graph, num_colors=3)
        assert r.seconds_without_setup == pytest.approx(
            r.sample_creation_seconds + r.triangle_count_seconds
        )

    def test_more_colors_more_setup(self, small_graph):
        a = run_pipeline(small_graph, num_colors=2)
        b = run_pipeline(small_graph, num_colors=8)
        assert b.setup_seconds > a.setup_seconds

    def test_throughput_finite(self, small_graph):
        assert 0 < run_pipeline(small_graph, num_colors=3).throughput_edges_per_ms() < 1e9

    def test_kernel_aggregate(self, small_graph):
        r = run_pipeline(small_graph, num_colors=3)
        assert r.kernel.instructions > 0
        assert r.kernel.dma_bytes > 0
        assert r.kernel.max_dpu_compute_seconds > 0


class TestUniformSampling:
    def test_records_p(self, small_graph):
        r = run_pipeline(small_graph, num_colors=3, uniform_p=0.5, seed=2)
        assert r.uniform_p == 0.5
        assert not r.is_exact

    def test_estimate_reasonable(self, rngs):
        g = erdos_renyi(200, 4000, rngs.stream("u")).canonicalize()
        truth = count_triangles(g)
        errs = [
            relative_error(
                run_pipeline(g, num_colors=3, uniform_p=0.5, seed=s).estimate, truth
            )
            for s in range(5)
        ]
        assert np.mean(errs) < 0.5

    def test_fewer_edges_routed(self, small_graph):
        exact = run_pipeline(small_graph, num_colors=3, seed=1)
        sampled = run_pipeline(small_graph, num_colors=3, uniform_p=0.25, seed=1)
        assert sampled.edges_routed.sum() < exact.edges_routed.sum()
        assert sampled.meta["edges_kept"] < small_graph.num_edges


class TestReservoirSampling:
    def test_caps_sample_sizes(self, small_graph):
        r = run_pipeline(small_graph, num_colors=2, reservoir_capacity=16, seed=4)
        assert r.meta["reservoir_capacity"] == 16
        assert np.any(r.reservoir_scales < 1.0)
        assert not r.is_exact

    def test_estimate_reasonable(self, rngs):
        g = erdos_renyi(200, 4000, rngs.stream("r")).canonicalize()
        truth = count_triangles(g)
        cap = int(0.5 * 6 * g.num_edges / 9)
        errs = [
            relative_error(
                run_pipeline(g, num_colors=3, reservoir_capacity=cap, seed=s).estimate,
                truth,
            )
            for s in range(5)
        ]
        assert np.mean(errs) < 0.3

    def test_huge_capacity_is_exact(self, small_graph):
        r = run_pipeline(small_graph, num_colors=3, reservoir_capacity=10**6, seed=4)
        assert r.count == count_triangles(small_graph)
        assert r.is_exact


class TestMisraGries:
    def test_exactness_preserved(self, small_graph):
        r = run_pipeline(small_graph, num_colors=3, misra_gries_k=64, misra_gries_t=4)
        assert r.count == count_triangles(small_graph)

    def test_speeds_up_hub_graph(self):
        g = get_dataset("wikipedia", "tiny")
        plain = run_pipeline(g, num_colors=4, seed=2)
        remapped = run_pipeline(
            g, num_colors=4, seed=2, misra_gries_k=256, misra_gries_t=8
        )
        assert remapped.count == plain.count
        assert remapped.triangle_count_seconds < 0.6 * plain.triangle_count_seconds

    def test_meta_records_parameters(self, small_graph):
        r = run_pipeline(small_graph, num_colors=2, misra_gries_k=32, misra_gries_t=2)
        assert r.meta["misra_gries"] == (32, 2)


class TestComposition:
    def test_uniform_plus_reservoir(self, rngs):
        g = erdos_renyi(200, 4000, rngs.stream("b")).canonicalize()
        truth = count_triangles(g)
        r = run_pipeline(
            g, num_colors=3, uniform_p=0.5, reservoir_capacity=400, seed=6
        )
        assert not r.is_exact
        # Both corrections applied; the estimate is in the right ballpark.
        assert relative_error(r.estimate, truth) < 1.0

    def test_summary_string(self, small_graph):
        text = run_pipeline(small_graph, num_colors=2).summary()
        assert "exact" in text and "C=2" in text
