"""Batched CPU->PIM transfers (host batch-buffer model)."""

from __future__ import annotations

import pytest

from repro import PimTriangleCounter
from repro.common.errors import ConfigurationError
from repro.core.host import PimTcOptions
from repro.graph.triangles import count_triangles


class TestValidation:
    def test_rejects_zero_batch(self):
        with pytest.raises(ConfigurationError):
            PimTcOptions(transfer_batch_edges=0)

    def test_none_is_default(self):
        assert PimTcOptions().transfer_batch_edges is None


class TestBatchedTransfers:
    def test_count_unchanged(self, small_graph):
        truth = count_triangles(small_graph)
        bulk = PimTriangleCounter(num_colors=3, seed=1).count(small_graph)
        batched = (
            PimTriangleCounter(num_colors=3, seed=1)
            .with_options(transfer_batch_edges=16)
            .count(small_graph)
        )
        assert bulk.count == batched.count == truth

    def test_smaller_batches_cost_more_transfer_time(self, small_graph):
        def sample_time(batch):
            counter = PimTriangleCounter(num_colors=3, seed=1).with_options(
                transfer_batch_edges=batch
            )
            return counter.count(small_graph).sample_creation_seconds

        times = [sample_time(b) for b in (8, 64, 10**6)]
        assert times[0] > times[1] > times[2] * 0.99

    def test_huge_batch_equals_bulk(self, small_graph):
        bulk = PimTriangleCounter(num_colors=3, seed=1).count(small_graph)
        one_round = (
            PimTriangleCounter(num_colors=3, seed=1)
            .with_options(transfer_batch_edges=10**9)
            .count(small_graph)
        )
        assert one_round.sample_creation_seconds == pytest.approx(
            bulk.sample_creation_seconds
        )

    def test_count_phase_unaffected(self, small_graph):
        bulk = PimTriangleCounter(num_colors=3, seed=1).count(small_graph)
        batched = (
            PimTriangleCounter(num_colors=3, seed=1)
            .with_options(transfer_batch_edges=16)
            .count(small_graph)
        )
        assert batched.triangle_count_seconds == pytest.approx(
            bulk.triangle_count_seconds
        )
