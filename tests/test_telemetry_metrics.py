"""Metrics registry: instrument semantics and deterministic snapshots."""

from __future__ import annotations

import pytest

from repro.common.errors import ConfigurationError
from repro.telemetry import (
    DEFAULT_FRACTION_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_snapshot,
)


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter(name="c")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        c = Counter(name="c")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_snapshot(self):
        c = Counter(name="c")
        c.inc(4)
        assert c.snapshot() == {"kind": "counter", "value": 4.0}


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge(name="g")
        g.set(10)
        g.set(3)
        assert g.snapshot() == {"kind": "gauge", "value": 3.0}


class TestHistogram:
    def test_buckets_must_ascend(self):
        with pytest.raises(ConfigurationError):
            Histogram(name="h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ConfigurationError):
            Histogram(name="h", buckets=())

    def test_default_buckets_are_valid(self):
        Histogram(name="a", buckets=DEFAULT_FRACTION_BUCKETS)
        Histogram(name="b", buckets=DEFAULT_SIZE_BUCKETS)

    def test_observe_routes_to_bucket(self):
        h = Histogram(name="h", buckets=(1.0, 10.0))
        h.observe(0.5)   # <= 1
        h.observe(1.0)   # boundary is inclusive
        h.observe(5.0)   # <= 10
        h.observe(100.0) # overflow -> +inf bucket
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.total == pytest.approx(106.5)
        assert h.min_value == pytest.approx(0.5)
        assert h.max_value == pytest.approx(100.0)
        assert h.mean == pytest.approx(106.5 / 4)

    def test_observe_many(self):
        h = Histogram(name="h", buckets=(1.0,))
        h.observe_many([0.1, 0.2, 5.0])
        assert h.counts == [2, 1]

    def test_empty_snapshot_has_null_extrema(self):
        snap = Histogram(name="h", buckets=(1.0,)).snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h", buckets=(1.0,)) is reg.histogram("h")

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ["a", "b"]
        assert len(reg) == 2
        assert "a" in reg and "missing" not in reg
        assert reg.get("missing") is None

    def test_snapshot_splits_on_volatility(self):
        reg = MetricsRegistry()
        reg.counter("stable").inc(1)
        reg.counter("wall", volatile=True).inc(9)
        assert list(reg.snapshot()) == ["stable"]
        assert list(reg.snapshot(volatile=True)) == ["wall"]

    def test_snapshot_is_sorted_and_plain_data(self):
        reg = MetricsRegistry()
        reg.gauge("z").set(1)
        reg.counter("a").inc()
        reg.histogram("m", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == ["a", "m", "z"]
        # round-trippable through JSON without custom encoders
        import json

        assert json.loads(json.dumps(snap)) == snap


class TestQuantiles:
    def _hist(self):
        h = Histogram(name="h", buckets=DEFAULT_LATENCY_BUCKETS)
        return h

    def test_empty_histogram_is_zero(self):
        assert self._hist().quantile(0.5) == 0.0

    def test_quantile_bounds_checked(self):
        with pytest.raises(ConfigurationError, match="quantile"):
            self._hist().quantile(1.5)
        with pytest.raises(ConfigurationError, match="quantile"):
            quantile_from_snapshot(self._hist().snapshot(), -0.1)

    def test_single_observation_clamps_to_it(self):
        h = self._hist()
        h.observe(0.002)
        # Min/max clamping beats bucket interpolation: every quantile of a
        # one-sample histogram is that sample.
        assert h.quantile(0.0) == h.quantile(0.5) == h.quantile(1.0) == 0.002

    def test_quantiles_are_monotone_and_bracket_the_data(self):
        h = self._hist()
        values = [0.0002, 0.002, 0.002, 0.02, 0.02, 0.02, 0.2, 2.0]
        h.observe_many(values)
        qs = [h.quantile(q) for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)]
        assert qs == sorted(qs)
        assert min(values) <= qs[0] and qs[-1] <= max(values)
        # The median of 8 samples with 3 in the 0.01-0.03 bucket lands there.
        assert 0.01 <= h.quantile(0.5) <= 0.03

    def test_overflow_mass_interpolates_toward_the_recorded_max(self):
        h = Histogram(name="h", buckets=(0.001,))
        h.observe_many([5.0, 7.0, 9.0])
        # All mass overflowed: the +inf bucket interpolates up to max.
        assert 5.0 <= h.quantile(0.99) <= 9.0
        assert h.quantile(1.0) == 9.0


class TestExport:
    def test_export_carries_help_and_volatility(self):
        registry = MetricsRegistry()
        registry.counter("reqs", help="requests served").inc(3)
        registry.histogram(
            "lat", buckets=DEFAULT_LATENCY_BUCKETS, help="latency", volatile=True
        ).observe(0.01)
        exported = registry.export()
        assert exported["reqs"]["value"] == 3.0
        assert exported["reqs"]["help"] == "requests served"
        assert exported["reqs"]["volatile"] is False
        assert exported["lat"]["volatile"] is True
        assert exported["lat"]["kind"] == "histogram"

    def test_export_includes_volatile_instruments_snapshot_does_not(self):
        registry = MetricsRegistry()
        registry.gauge("wall", volatile=True).set(1.25)
        assert "wall" not in registry.snapshot()
        assert registry.export()["wall"]["value"] == 1.25

    def test_export_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zeta")
        registry.counter("alpha")
        assert list(registry.export()) == ["alpha", "zeta"]
