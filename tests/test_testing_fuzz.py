"""The fuzz driver and its seed-reproduction contract.

The contract pinned here: a failure printed by ``run_fuzz(budget, seed)`` at
iteration ``i`` names ``seed + i``, and ``run_fuzz(1, seed + i)`` — which is
exactly what ``repro-count --fuzz 1 --seed <printed>`` runs — rebuilds the
identical case and the identical failure.
"""

from __future__ import annotations

import pytest

from repro.testing.fuzz import (
    FuzzFailure,
    FuzzReport,
    default_checkers,
    fuzz_iteration,
    metamorphic_checker,
    run_fuzz,
)
from repro.testing.metamorphic import MetamorphicRelation
from repro.testing.strategies import FAMILY_NAMES


def _broken_relation() -> MetamorphicRelation:
    """A relation that fails on every graph with >= 2 edges."""
    return MetamorphicRelation(
        "planted-defect",
        "synthetic always-failing relation to exercise the failure path",
        lambda graph, rng: (
            graph.num_edges < 2,
            f"injected defect on m={graph.num_edges}",
        ),
    )


class TestIterationDeterminism:
    def test_same_seed_same_case(self):
        a, _ = fuzz_iteration(1234, checkers=[])
        b, _ = fuzz_iteration(1234, checkers=[])
        assert a.fingerprint() == b.fingerprint()

    def test_iteration_i_equals_standalone_run(self):
        """Seed arithmetic: run_fuzz(n, s) iteration i == run_fuzz(1, s+i)."""
        base = 40
        cases = [fuzz_iteration(base + i, checkers=[])[0] for i in range(5)]
        for i, case in enumerate(cases):
            alone, _ = fuzz_iteration(base + i, checkers=[])
            assert alone.fingerprint() == case.fingerprint(), f"iteration {i}"


class TestReportBookkeeping:
    def test_clean_run(self):
        report = run_fuzz(6, seed=0, checkers=[lambda case, rngs: []])
        assert report.ok
        assert report.budget == 6
        assert sum(report.cases_by_family.values()) == 6
        assert set(report.cases_by_family) <= set(FAMILY_NAMES)
        assert "all ok" in report.summary()
        assert "seeds 0..5" in report.summary()

    def test_budget_validated(self):
        with pytest.raises(ValueError):
            run_fuzz(0)

    def test_fail_fast_stops_early(self):
        checker = metamorphic_checker([_broken_relation()])
        report = run_fuzz(10, seed=0, checkers=[checker], fail_fast=True)
        assert len(report.failures) == 1
        assert sum(report.cases_by_family.values()) < 10

    def test_render_lists_failures(self):
        checker = metamorphic_checker([_broken_relation()])
        report = run_fuzz(3, seed=5, checkers=[checker])
        assert not report.ok
        text = report.render()
        assert "FAILED" in text
        assert "injected defect" in text


class TestReproductionContract:
    """A printed fuzz failure must reproduce from its printed seed, alone."""

    def test_failure_names_reproducing_seed(self):
        checker = metamorphic_checker([_broken_relation()])
        report = run_fuzz(8, seed=100, checkers=[checker])
        assert report.failures, "the injected defect should fire at least once"
        for failure in report.failures:
            assert failure.seed == 100 + failure.iteration
            assert failure.repro_command == f"repro-count --fuzz 1 --seed {failure.seed}"
            assert failure.repro_command in str(failure)
            # Replay exactly what the printed command runs: budget 1, that seed.
            replay = run_fuzz(1, seed=failure.seed, checkers=[checker])
            assert len(replay.failures) == 1
            replayed = replay.failures[0]
            assert replayed.family == failure.family
            assert replayed.case_repr == failure.case_repr
            assert replayed.messages == failure.messages

    def test_real_checkers_pass_smoke_budget(self):
        """The default grid (differential + metamorphic) is clean on 4 seeds."""
        report = run_fuzz(4, seed=2, checkers=default_checkers())
        assert report.ok, report.render()


class TestFailureFormatting:
    def test_str_is_actionable(self):
        failure = FuzzFailure(
            iteration=3,
            seed=45,
            family="gnp",
            case_repr="GraphCase(...)",
            messages=("differential: kernel:fast: counted 9, oracle says 8",),
        )
        text = str(failure)
        assert "seed=45" in text
        assert "repro-count --fuzz 1 --seed 45" in text
        assert "oracle says 8" in text

    def test_empty_report_ok(self):
        report = FuzzReport(budget=1, base_seed=0)
        assert report.ok
        assert "all ok" in report.summary()
