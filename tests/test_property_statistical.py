"""Statistical acceptance: documented bounds, correct math, real teeth.

Policy under test (see docs/testing.md): estimators are judged by the mean
of an ``n``-seed sweep against a Chebyshev interval at explicit failure
probability ``delta`` — never by a single seed against a hand-picked epsilon.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi
from repro.testing.statistical import (
    AcceptanceBound,
    SeedSweepResult,
    binomial_uniform_bound,
    empirical_chebyshev_bound,
    sweep_misra_gries,
    sweep_reservoir,
    sweep_uniform,
)
from repro.testing.strategies import planted_triangles


@pytest.fixture(scope="module")
def planted():
    """40 edge-disjoint triangles: the binomial bound's assumption holds."""
    return planted_triangles(40, 130, np.random.default_rng(7)).canonicalize()


@pytest.fixture(scope="module")
def er_graph():
    return erdos_renyi(50, 300, np.random.default_rng(3)).canonicalize()


class TestBoundMath:
    def test_binomial_variance_formula(self):
        # Var(single estimate) = T (1 - p^3) / p^3; eps = sqrt(Var / (n delta)).
        t, p, n, delta = 40, 0.5, 40, 0.02
        bound = binomial_uniform_bound(t, p, n, delta)
        var = t * (1 - p**3) / p**3
        assert bound.epsilon == pytest.approx(np.sqrt(var / (n * delta)))
        assert bound.method == "binomial-chebyshev"
        assert "P[false alarm] <= 0.02" in bound.describe()

    def test_binomial_bound_zero_at_p1(self):
        assert binomial_uniform_bound(100, 1.0, 10, 0.05).epsilon == 0.0

    def test_binomial_bound_validates_inputs(self):
        with pytest.raises(ValueError):
            binomial_uniform_bound(10, 0.0, 5, 0.05)
        with pytest.raises(ValueError):
            binomial_uniform_bound(10, 0.5, 5, 1.5)

    def test_empirical_bound_scales_with_variance(self):
        tight = empirical_chebyshev_bound(np.array([10.0, 10.1, 9.9, 10.0]), 0.05)
        loose = empirical_chebyshev_bound(np.array([5.0, 15.0, 0.0, 20.0]), 0.05)
        assert loose.epsilon > tight.epsilon > 0

    def test_empirical_bound_zero_variance_means_exact(self):
        bound = empirical_chebyshev_bound(np.full(6, 42.0), 0.05)
        assert bound.epsilon == 0.0


class TestSweeps:
    def test_uniform_accepts_on_planted(self, planted):
        result = sweep_uniform(
            planted, 0.5, n_seeds=40, delta=0.02, edge_disjoint=True
        )
        # Chebyshev at delta=0.02: this fixed-seed sweep must land inside.
        assert result.accepted, result.detail()
        assert result.bound.method == "binomial-chebyshev"

    def test_reservoir_accepts(self, er_graph):
        result = sweep_reservoir(er_graph, capacity=40, n_seeds=30, delta=0.02)
        assert result.accepted, result.detail()
        assert result.std > 0  # the reservoir path really sampled

    def test_misra_gries_path_is_exact_for_every_seed(self, er_graph):
        result = sweep_misra_gries(er_graph, k=32, t=4, n_seeds=8)
        assert result.accepted, result.detail()
        assert result.bound.epsilon == 0.0
        assert np.all(result.estimates == result.truth)

    def test_detail_names_seeds_and_error(self, planted):
        result = sweep_uniform(
            planted, 0.5, n_seeds=5, delta=0.1, first_seed=17, edge_disjoint=True
        )
        detail = result.detail()
        assert "seeds=17..21" in detail
        assert "rel_err=" in detail
        assert "P[false alarm]" in detail


class TestTeeth:
    """The acceptance must actually reject a biased estimator."""

    def test_biased_mean_rejected(self):
        truth = 100.0
        bound = AcceptanceBound(epsilon=5.0, n_seeds=10, delta=0.02, method="exact")
        biased = SeedSweepResult(
            label="biased",
            truth=truth,
            estimates=np.full(10, 120.0),  # 20% off — a broken correction factor
            bound=bound,
            first_seed=0,
        )
        assert not biased.accepted
        with pytest.raises(AssertionError, match="statistical acceptance FAILED"):
            biased.require()

    def test_missing_p3_correction_would_fail(self, planted):
        """Simulate forgetting the 1/p^3 unbias: mean collapses to T * p^3."""
        result = sweep_uniform(
            planted, 0.5, n_seeds=20, delta=0.02, edge_disjoint=True
        )
        broken = SeedSweepResult(
            label="no-unbias",
            truth=result.truth,
            estimates=result.estimates * 0.5**3,
            bound=result.bound,
            first_seed=0,
        )
        assert not broken.accepted

    def test_zero_variance_bias_rejected(self):
        """Deterministic-but-wrong paths cannot hide behind a wide interval."""
        bound = empirical_chebyshev_bound(np.full(8, 50.0), 0.05)
        wrong = SeedSweepResult(
            label="deterministic-wrong",
            truth=49.0,
            estimates=np.full(8, 50.0),
            bound=bound,
            first_seed=0,
        )
        assert not wrong.accepted
