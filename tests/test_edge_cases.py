"""Pathological inputs through the full pipeline.

Graphs at the boundary of every assumption: no triangles by construction,
complete graphs, more colors than nodes, single edges, duplicate-heavy raw
inputs — the pipeline must stay exact on all of them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import DynamicPimCounter, PimTriangleCounter
from repro.graph.coo import COOGraph
from repro.graph.triangles import count_triangles


def pipeline_count(graph: COOGraph, colors: int = 4, **kw) -> int:
    return PimTriangleCounter(num_colors=colors, seed=1, **kw).count(graph).count


class TestDegenerateShapes:
    def test_single_edge(self):
        g = COOGraph.from_edges([(0, 1)], num_nodes=2)
        assert pipeline_count(g, colors=3) == 0

    def test_single_triangle_many_colors(self):
        g = COOGraph.from_edges([(0, 1), (1, 2), (0, 2)], num_nodes=3)
        # More colors than nodes: most cores receive nothing.
        assert pipeline_count(g, colors=6) == 1

    def test_path_graph(self):
        g = COOGraph.from_edges([(i, i + 1) for i in range(50)], num_nodes=51)
        assert pipeline_count(g) == 0

    def test_star_graph(self):
        g = COOGraph.from_edges([(0, i) for i in range(1, 60)], num_nodes=60)
        assert pipeline_count(g) == 0

    def test_cycle_graph(self):
        n = 31
        g = COOGraph.from_edges([(i, (i + 1) % n) for i in range(n)], num_nodes=n)
        assert pipeline_count(g.canonicalize()) == 0

    def test_complete_graph(self):
        n = 14
        edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        g = COOGraph.from_edges(edges, num_nodes=n)
        assert pipeline_count(g) == n * (n - 1) * (n - 2) // 6

    def test_complete_bipartite_triangle_free(self):
        left, right = 8, 9
        edges = [(i, left + j) for i in range(left) for j in range(right)]
        g = COOGraph.from_edges(edges, num_nodes=left + right)
        assert pipeline_count(g) == 0

    def test_two_disconnected_triangles(self):
        g = COOGraph.from_edges(
            [(0, 1), (1, 2), (0, 2), (10, 11), (11, 12), (10, 12)], num_nodes=13
        )
        assert pipeline_count(g, colors=5) == 2

    def test_bowtie_shared_vertex(self):
        g = COOGraph.from_edges(
            [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)], num_nodes=5
        )
        assert pipeline_count(g) == 2


class TestMessyRawInput:
    def test_duplicate_heavy_raw_stream(self, rng):
        """A raw stream with every edge repeated both ways + self-loops."""
        base = [(0, 1), (1, 2), (0, 2), (2, 3)]
        messy = []
        for u, v in base:
            messy += [(u, v), (v, u), (u, v)]
        messy += [(i, i) for i in range(4)]
        g = COOGraph.from_edges(messy, num_nodes=4).canonicalize()
        assert pipeline_count(g) == 1

    def test_ids_at_range_boundary(self):
        n = 1000
        g = COOGraph.from_edges(
            [(n - 3, n - 2), (n - 2, n - 1), (n - 3, n - 1)], num_nodes=n
        )
        assert pipeline_count(g) == 1

    def test_all_samplers_on_triangle_free_graph(self):
        g = COOGraph.from_edges([(i, i + 1) for i in range(100)], num_nodes=101)
        exact = PimTriangleCounter(num_colors=3, seed=2).count(g)
        uni = PimTriangleCounter(num_colors=3, seed=2, uniform_p=0.5).count(g)
        res = PimTriangleCounter(num_colors=3, seed=2, reservoir_capacity=20).count(g)
        assert exact.count == uni.count == res.count == 0

    def test_local_counts_on_empty(self):
        g = COOGraph.from_edges([], num_nodes=6)
        result = PimTriangleCounter(num_colors=2, seed=1).count_local(g)
        assert result.count == 0
        assert result.local_estimates.shape == (6,)
        assert not result.local_estimates.any()


class TestDynamicEdgeCases:
    def test_every_batch_is_one_edge(self):
        g = COOGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (1, 3)], num_nodes=4)
        dyn = DynamicPimCounter(g.num_nodes, num_colors=2, seed=3)
        for batch in g.split_batches(g.num_edges):
            dyn.apply_update(batch)
        assert dyn.triangles == count_triangles(g)

    def test_delete_before_any_insert(self):
        dyn = DynamicPimCounter(10, num_colors=2, seed=3)
        ghost = COOGraph.from_edges([(0, 1)], num_nodes=10)
        result = dyn.apply_deletion(ghost)
        assert result.triangles_total == 0
        assert dyn.triangles == 0
