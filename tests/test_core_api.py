"""Public API surface: PimTriangleCounter."""

from __future__ import annotations

import pytest

from repro import PimTriangleCounter
from repro.graph.triangles import count_triangles
from repro.pimsim.config import PimSystemConfig


class TestConstruction:
    def test_defaults(self):
        counter = PimTriangleCounter()
        assert counter.num_dpus == 20  # binom(6,3) for C=4

    def test_paper_max_colors(self):
        assert PimTriangleCounter().max_colors() == 23

    def test_custom_system(self):
        counter = PimTriangleCounter(
            num_colors=2, system_config=PimSystemConfig(num_ranks=1, dpus_per_rank=8)
        )
        assert counter.max_colors() == 2

    def test_repr(self):
        text = repr(PimTriangleCounter(num_colors=5, uniform_p=0.5))
        assert "C=5" in text and "p=0.5" in text


class TestCounting:
    def test_count(self, small_graph):
        result = PimTriangleCounter(num_colors=3, seed=1).count(small_graph)
        assert result.count == count_triangles(small_graph)

    def test_counter_reusable_across_graphs(self, small_graph, triangle_graph):
        counter = PimTriangleCounter(num_colors=2, seed=1)
        assert counter.count(triangle_graph).count == 1
        assert counter.count(small_graph).count == count_triangles(small_graph)

    def test_with_options_override(self, small_graph):
        base = PimTriangleCounter(num_colors=3, seed=1)
        approx = base.with_options(uniform_p=0.5)
        assert approx.options.uniform_p == 0.5
        assert approx.options.num_colors == 3
        assert base.options.uniform_p == 1.0  # original untouched

    def test_num_dpus_tracks_colors(self):
        assert PimTriangleCounter(num_colors=23).num_dpus == 2300
