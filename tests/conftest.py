"""Shared fixtures and hypothesis strategies for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.common.rng import RngFactory
from repro.graph.coo import COOGraph
from repro.graph.generators import erdos_renyi


@pytest.fixture
def rngs() -> RngFactory:
    return RngFactory(seed=1234)


@pytest.fixture
def rng(rngs) -> np.random.Generator:
    return rngs.stream("test")


@pytest.fixture
def small_graph(rng) -> COOGraph:
    """A canonical ER graph with a healthy number of triangles."""
    return erdos_renyi(60, 320, rng, name="er-small").canonicalize()


@pytest.fixture
def triangle_graph() -> COOGraph:
    """The smallest interesting graph: a single triangle plus a pendant edge."""
    return COOGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)], num_nodes=4)


# ---------------------------------------------------------------- strategies
def edge_list_strategy(max_nodes: int = 30, max_edges: int = 120):
    """Hypothesis strategy producing a random (possibly messy) edge list."""
    return st.integers(min_value=2, max_value=max_nodes).flatmap(
        lambda n: st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=0,
            max_size=max_edges,
        ).map(lambda edges: COOGraph.from_edges(edges, num_nodes=n))
    )


def graph_strategy(max_nodes: int = 30, max_edges: int = 120):
    """Canonicalized random graphs."""
    return edge_list_strategy(max_nodes, max_edges).map(lambda g: g.canonicalize())
