"""Shared fixtures and hypothesis strategies for the repro test suite.

The heavy lifting lives in :mod:`repro.testing` — the reusable correctness
harness — whose pytest fixtures are star-imported below; this file only adds
a few repo-local conveniences.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.rng import RngFactory
from repro.graph.coo import COOGraph
from repro.graph.generators import erdos_renyi

# Harness fixtures: graph_case, fuzz_rngs, differential_runner,
# metamorphic_relations.
from repro.testing.pytest_plugin import *  # noqa: F401,F403

# Strategies moved into the library so downstream users get them too; tests
# keep importing them from conftest.
from repro.testing.strategies import edge_list_strategy, graph_strategy  # noqa: F401


@pytest.fixture
def rngs() -> RngFactory:
    return RngFactory(seed=1234)


@pytest.fixture
def rng(rngs) -> np.random.Generator:
    return rngs.stream("test")


@pytest.fixture
def small_graph(rng) -> COOGraph:
    """A canonical ER graph with a healthy number of triangles."""
    return erdos_renyi(60, 320, rng, name="er-small").canonicalize()


@pytest.fixture
def triangle_graph() -> COOGraph:
    """The smallest interesting graph: a single triangle plus a pendant edge."""
    return COOGraph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)], num_nodes=4)
