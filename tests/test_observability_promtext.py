"""Prometheus text exposition of the service metrics snapshot.

Pins the wire-format contract: families are typed and help-ed, per-op
fan-outs collapse into ``op=`` / ``code=`` labels, histogram buckets are
cumulative with a ``+Inf`` terminal equal to ``_count``, counters carry the
``_total`` suffix — and the strict parser accepts everything the renderer
emits (the CI smoke check) while rejecting malformed exposition.
"""

from __future__ import annotations

import json

import pytest

from repro.observability.promtext import (
    SERVICE_METRICS_SCHEMA,
    parse_prometheus,
    render_json,
    render_prometheus,
    sanitize_metric_name,
    write_snapshot,
)


def _doc() -> dict:
    """A hand-built snapshot with every instrument kind in play."""
    hist = {
        "kind": "histogram",
        "buckets": [0.001, 0.01, 0.1],
        "counts": [2, 1, 0, 1],  # trailing entry is the +inf overflow
        "sum": 0.5,
        "count": 4,
        "min": 0.0004,
        "max": 0.2,
        "help": "wall-clock execute time per request",
        "volatile": True,
    }
    return {
        "schema": SERVICE_METRICS_SCHEMA,
        "observability": True,
        "sessions_open": 1,
        "max_sessions": 8,
        "uptime_seconds": 12.5,
        "service": {
            "service.requests.count": {
                "kind": "counter", "value": 3.0, "help": "requests served",
            },
            "service.requests.insert": {
                "kind": "counter", "value": 7.0, "help": "requests served",
            },
            "service.rejections.backpressure": {
                "kind": "counter", "value": 2.0, "help": "rejected requests",
            },
            "service.sessions_open": {
                "kind": "gauge", "value": 1.0, "help": "open sessions",
            },
        },
        "latency": {},
        "sessions": {
            "alpha": {
                "metrics": {
                    "session.ops.insert": {
                        "kind": "counter", "value": 7.0, "help": "ops",
                    },
                    "session.op_latency_seconds.insert": dict(hist),
                },
                "latency": {},
                "pending": 0,
                "resident_bytes": 4096,
            }
        },
    }


class TestRender:
    def test_label_families_collapse(self):
        text = render_prometheus(_doc())
        assert (
            'repro_service_requests_total{op="count"} 3' in text
        )
        assert 'repro_service_requests_total{op="insert"} 7' in text
        assert 'repro_service_rejections_total{code="backpressure"} 2' in text
        # One TYPE header per family, not per op.
        assert text.count("# TYPE repro_service_requests_total counter") == 1

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_prometheus(_doc())
        lines = [l for l in text.splitlines() if "op_latency" in l and "_bucket" in l]
        # counts [2, 1, 0] -> cumulative 2, 3, 3; +Inf = total count 4.
        assert any(l.endswith(" 2") and 'le="0.001"' in l for l in lines)
        assert any(l.endswith(" 3") and 'le="0.01"' in l for l in lines)
        assert any(l.endswith(" 4") and 'le="+Inf"' in l for l in lines)
        assert 'repro_session_op_latency_seconds_sum{op="insert",session="alpha"} 0.5' in text
        assert 'repro_session_op_latency_seconds_count{op="insert",session="alpha"} 4' in text

    def test_session_label_on_session_instruments(self):
        text = render_prometheus(_doc())
        assert 'repro_session_ops_total{op="insert",session="alpha"} 7' in text

    def test_gauge_has_no_total_suffix(self):
        text = render_prometheus(_doc())
        assert "repro_service_sessions_open 1" in text
        assert "repro_service_sessions_open_total" not in text

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("a.b-c d") == "a_b_c_d"
        assert sanitize_metric_name("9lives")[0] == "_"

    def test_render_json_is_stable(self):
        doc = _doc()
        assert render_json(doc) == render_json(json.loads(json.dumps(doc)))
        assert json.loads(render_json(doc))["schema"] == SERVICE_METRICS_SCHEMA


class TestWriteSnapshot:
    @pytest.mark.parametrize("suffix", ["prom", "txt", "text"])
    def test_prom_suffixes_get_text_format(self, tmp_path, suffix):
        path = tmp_path / f"metrics.{suffix}"
        write_snapshot(str(path), _doc())
        assert path.read_text().startswith("# ")

    def test_other_suffixes_get_json(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_snapshot(str(path), _doc())
        assert json.loads(path.read_text())["schema"] == SERVICE_METRICS_SCHEMA


class TestParser:
    def test_round_trip_accepts_renderer_output(self):
        families = parse_prometheus(render_prometheus(_doc()))
        requests = families["repro_service_requests_total"]
        assert requests["type"] == "counter"
        assert ("repro_service_requests_total", {"op": "insert"}, 7.0) in (
            requests["samples"]
        )
        hist = families["repro_session_op_latency_seconds"]
        assert hist["type"] == "histogram"
        names = {name for name, _, _ in hist["samples"]}
        assert names == {
            "repro_session_op_latency_seconds_bucket",
            "repro_session_op_latency_seconds_sum",
            "repro_session_op_latency_seconds_count",
        }
        inf = [
            value
            for name, labels, value in hist["samples"]
            if labels.get("le") == "+Inf"
        ]
        assert inf == [4.0]

    def test_untyped_sample_rejected(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            parse_prometheus("repro_orphan 1\n")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown TYPE"):
            parse_prometheus("# TYPE repro_x frobnogram\nrepro_x 1\n")

    def test_malformed_labels_rejected(self):
        with pytest.raises(ValueError, match="malformed labels"):
            parse_prometheus('# TYPE x gauge\nx{op=unquoted} 1\n')

    def test_unparsable_value_rejected(self):
        with pytest.raises(ValueError, match="unparsable"):
            parse_prometheus("# TYPE x gauge\nx purple\n")

    def test_quoted_comma_in_label_value_accepted(self):
        families = parse_prometheus(
            '# TYPE x gauge\nx{graph="a,b",op="count"} 2\n'
        )
        assert families["x"]["samples"] == [
            ("x", {"graph": "a,b", "op": "count"}, 2.0)
        ]
